"""JOIN pruning: probe-side partition skipping from build-side values (§6).

Four steps (§6.1): (1) summarize the build side's join-key values
during the hash join's build phase, (2) ship the summary to the probe
side, (3) match it against probe partitions' min/max metadata, and
(4) prune partitions whose ranges cannot overlap the summary.

The technique is probabilistic in the safe direction (§6.2): it may
keep a partition that has no join partners, but never prunes one that
has. It applies to the probe side of hash joins where probe rows are
not preserved (i.e. inner joins, or the non-preserved side of outer
joins).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

from ..storage.zonemap import ZoneMap
from .base import PruneCategory, PruningResult, ScanSet
from .filters import CuckooFilter, XorFilter
from .summaries import BloomFilter, MinMaxSummary, RangeSetSummary

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .stats_index import StatsIndex

SUMMARY_KINDS = ("minmax", "rangeset", "bloom", "cuckoo", "xor")


def build_summary(values: Iterable[Any], kind: str = "rangeset",
                  max_ranges: int = 64, bloom_fpp: float = 0.01):
    """Create a build-side value summary of the requested kind."""
    if kind == "minmax":
        return MinMaxSummary(values)
    if kind == "rangeset":
        return RangeSetSummary(values, max_ranges=max_ranges)
    if kind == "bloom":
        materialized = [v for v in values if v is not None]
        bloom = BloomFilter(expected_items=len(materialized),
                            fpp=bloom_fpp)
        bloom.add_all(materialized)
        return bloom
    if kind == "cuckoo":
        materialized = [v for v in values if v is not None]
        cuckoo = CuckooFilter(expected_items=len(materialized))
        cuckoo.add_all(materialized)
        return cuckoo
    if kind == "xor":
        return XorFilter(values)
    raise ValueError(
        f"unknown summary kind {kind!r}; expected one of {SUMMARY_KINDS}")


class JoinPruner:
    """Prunes a probe-side scan set against a build-side summary.

    With a :class:`~repro.pruning.stats_index.StatsIndex` attached, the
    interval summaries (minmax / rangeset) classify every indexed
    partition in one numpy pass
    (:func:`~repro.pruning.stats_index.join_may_join_mask`); entries
    the index cannot vouch for by zone-map identity (degraded copies,
    stale rows) and non-interval summaries (Bloom/Cuckoo/Xor) take the
    per-partition scalar path, which remains the differential oracle.
    ``mode`` after :meth:`prune` reports which route ran:
    ``"vectorized"`` / ``"mixed"`` / ``"fallback"``.
    """

    def __init__(self, probe_column: str, summary,
                 index: "StatsIndex | None" = None):
        self.probe_column = probe_column
        self.summary = summary
        self.index = index
        self.checks = 0
        self.vector_checks = 0
        self.mode = "fallback"

    @property
    def fallback_checks(self) -> int:
        return self.checks

    def partition_may_join(self, zone_map: ZoneMap) -> bool:
        """Could any row of this partition find a build-side partner?"""
        self.checks += 1
        try:
            stats = zone_map.stats(self.probe_column)
        except Exception:
            return True
        if not stats.present:
            return True  # missing metadata: cannot prune
        if not stats.has_values:
            # All probe keys NULL: NULL never equals anything, so no
            # row of this partition can join.
            return False
        return self.summary.might_overlap_range(stats.min_value,
                                                stats.max_value)

    def prune(self, scan_set: ScanSet) -> PruningResult:
        index = self.index
        mask = None
        if index is not None and len(index):
            from .stats_index import join_may_join_mask

            mask = join_may_join_mask(index, self.probe_column,
                                      self.summary)
        kept = []
        pruned_ids = []
        for partition_id, zone_map in scan_set:
            may_join = None
            if mask is not None:
                row = index.row_of(partition_id)
                if row is not None and index.zone_map_at(row) is zone_map:
                    self.vector_checks += 1
                    may_join = bool(mask[row])
            if may_join is None:
                may_join = self.partition_may_join(zone_map)
            if may_join:
                kept.append((partition_id, zone_map))
            else:
                pruned_ids.append(partition_id)
        if self.vector_checks and not self.checks:
            self.mode = "vectorized"
        elif self.vector_checks:
            self.mode = "mixed"
        else:
            self.mode = "fallback"
        return PruningResult(
            technique=PruneCategory.JOIN,
            before=len(scan_set),
            kept=scan_set.with_entries(kept),
            pruned_ids=pruned_ids,
            checks=self.vector_checks + self.checks,
        )
