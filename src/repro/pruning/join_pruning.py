"""JOIN pruning: probe-side partition skipping from build-side values (§6).

Four steps (§6.1): (1) summarize the build side's join-key values
during the hash join's build phase, (2) ship the summary to the probe
side, (3) match it against probe partitions' min/max metadata, and
(4) prune partitions whose ranges cannot overlap the summary.

The technique is probabilistic in the safe direction (§6.2): it may
keep a partition that has no join partners, but never prunes one that
has. It applies to the probe side of hash joins where probe rows are
not preserved (i.e. inner joins, or the non-preserved side of outer
joins).
"""

from __future__ import annotations

from typing import Any, Iterable

from ..storage.zonemap import ZoneMap
from .base import PruneCategory, PruningResult, ScanSet
from .filters import CuckooFilter, XorFilter
from .summaries import BloomFilter, MinMaxSummary, RangeSetSummary

SUMMARY_KINDS = ("minmax", "rangeset", "bloom", "cuckoo", "xor")


def build_summary(values: Iterable[Any], kind: str = "rangeset",
                  max_ranges: int = 64, bloom_fpp: float = 0.01):
    """Create a build-side value summary of the requested kind."""
    if kind == "minmax":
        return MinMaxSummary(values)
    if kind == "rangeset":
        return RangeSetSummary(values, max_ranges=max_ranges)
    if kind == "bloom":
        materialized = [v for v in values if v is not None]
        bloom = BloomFilter(expected_items=len(materialized),
                            fpp=bloom_fpp)
        bloom.add_all(materialized)
        return bloom
    if kind == "cuckoo":
        materialized = [v for v in values if v is not None]
        cuckoo = CuckooFilter(expected_items=len(materialized))
        cuckoo.add_all(materialized)
        return cuckoo
    if kind == "xor":
        return XorFilter(values)
    raise ValueError(
        f"unknown summary kind {kind!r}; expected one of {SUMMARY_KINDS}")


class JoinPruner:
    """Prunes a probe-side scan set against a build-side summary."""

    def __init__(self, probe_column: str, summary):
        self.probe_column = probe_column
        self.summary = summary
        self.checks = 0

    def partition_may_join(self, zone_map: ZoneMap) -> bool:
        """Could any row of this partition find a build-side partner?"""
        self.checks += 1
        try:
            stats = zone_map.stats(self.probe_column)
        except Exception:
            return True
        if not stats.present:
            return True  # missing metadata: cannot prune
        if not stats.has_values:
            # All probe keys NULL: NULL never equals anything, so no
            # row of this partition can join.
            return False
        return self.summary.might_overlap_range(stats.min_value,
                                                stats.max_value)

    def prune(self, scan_set: ScanSet) -> PruningResult:
        kept = []
        pruned_ids = []
        for partition_id, zone_map in scan_set:
            if self.partition_may_join(zone_map):
                kept.append((partition_id, zone_map))
            else:
                pruned_ids.append(partition_id)
        return PruningResult(
            technique=PruneCategory.JOIN,
            before=len(scan_set),
            kept=ScanSet(kept),
            pruned_ids=pruned_ids,
            checks=self.checks,
        )
