"""Vectorized pruning: SoA stats index + compiled numpy predicate kernels.

The paper treats pruning itself as a first-class cost: Snowflake
evaluates pruning predicates over metadata for millions of
micro-partitions per query (§3, §7), so the pruning check must be
orders of magnitude cheaper than the scan it saves. Walking the
predicate AST once per partition (:class:`~repro.pruning.FilterPruner`)
pays the interpreter overhead ``O(partitions × AST nodes)``.

This module turns that loop inside out:

* :class:`StatsIndex` packs per-column zone-map metadata
  (min/max/null-count/row-count) for *all* partitions of a table into
  struct-of-arrays numpy vectors, built lazily per referenced column.
* :func:`compile_pruning_kernel` compiles a prunable predicate
  (Compare / InList / IsNull / StartsWith / boolean literals combined
  with And/Or/Not — BETWEEN arrives as an And of Compares) into a tree
  of numpy kernels that classify every partition in one vectorized
  pass, producing the same NEVER/MAYBE/ALWAYS verdicts as
  :func:`repro.expr.pruning.prune_partition`.
* :class:`VectorizedFilterPruner` is a drop-in for ``FilterPruner``
  whose results are **bit-identical**: any partition (degraded /
  stat-less zone maps, stale index rows) or predicate shape (LIKE,
  arithmetic, mixed-type literals…) the kernels cannot prove they
  handle exactly falls back to the per-partition AST path.

Soundness strategy: rather than re-deriving pruning theory, every
kernel replicates the *exact* case analysis of ``expr/ranges.py`` on
boolean possibility triples ``(can_true, can_false, maybe_null)``, and
anything outside the replicated cases refuses to compile or bind. The
differential test suite (tests/test_vectorized_pruning.py) enforces
equality against the scalar oracle over randomized predicates and
zone maps.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable, Mapping

import numpy as np

from ..expr import ast
from ..expr.pruning import TriState
from ..expr.ranges import _comparison_value
from ..expr.rewrite import widen_for_pruning
from ..storage.zonemap import ZoneMap, prefix_successor
from ..types import Schema
from .base import PruneCategory, PruningResult, ScanSet
from .filter_pruning import FilterPruner

__all__ = [
    "StatsIndex",
    "PruningKernel",
    "compile_pruning_kernel",
    "VectorizedFilterPruner",
    "topk_skip_mask",
    "join_may_join_mask",
]

#: int8 verdict codes emitted by :meth:`PruningKernel.classify`.
NEVER_CODE, MAYBE_CODE, ALWAYS_CODE = 0, 1, 2

_CODE_TO_TRISTATE = {
    NEVER_CODE: TriState.NEVER,
    MAYBE_CODE: TriState.MAYBE,
    ALWAYS_CODE: TriState.ALWAYS,
}

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


#: Packing kind per value representation. DATE stats hold epoch days
#: and BOOLEAN stats hold Python bools (a subclass of int with int
#: ordering), so all three share the int64 lane.
_INT_KIND, _FLOAT_KIND, _STR_KIND = "int64", "float64", "str"

_KIND_OF_DTYPE: dict[Any, str] = {}


def _kind_of(dtype: Any) -> str | None:
    if not _KIND_OF_DTYPE:
        from ..types import DataType

        _KIND_OF_DTYPE.update({
            DataType.INTEGER: _INT_KIND,
            DataType.DATE: _INT_KIND,
            DataType.BOOLEAN: _INT_KIND,
            DataType.DOUBLE: _FLOAT_KIND,
            DataType.VARCHAR: _STR_KIND,
        })
    return _KIND_OF_DTYPE.get(dtype)


class _ColumnVectors:
    """SoA metadata for one column across all partitions of a table.

    The derived masks encode the four-way case analysis of
    ``ValueRange.from_stats`` + ``_range_column_ref``:

    * ``unknown``   — stats missing or ``present=False`` (both answer
      "anything possible", including via MetadataError);
    * ``valued``    — row_count > 0 and a real min/max pair;
    * ``novalue_mn``— row_count > 0 but min is None with nulls present
      (the NULL-only range);
    * everything else (empty partitions, min None without nulls) has
      all-False possibility flags.
    """

    __slots__ = (
        "kind", "lo", "hi", "present", "has_min", "unknown", "valued",
        "novalue_mn", "nulls_pos", "isnull_possible", "notnull_possible",
    )

    def __init__(self, kind: str, lo: np.ndarray, hi: np.ndarray,
                 present: np.ndarray, has_min: np.ndarray,
                 rows: np.ndarray, nulls: np.ndarray):
        self.kind = kind
        self.lo = lo
        self.hi = hi
        self.present = present
        self.has_min = has_min
        nonempty = rows != 0
        self.unknown = ~present
        self.valued = present & has_min & nonempty
        self.novalue_mn = present & ~has_min & nonempty & (nulls > 0)
        self.nulls_pos = self.valued & (nulls > 0)
        self.isnull_possible = (self.unknown | self.novalue_mn
                                | self.nulls_pos)
        self.notnull_possible = self.unknown | self.valued


def _pack_column(name: str, zone_maps: list[ZoneMap]) -> _ColumnVectors | None:
    """Pack one column's stats into vectors, or None if not packable.

    A column is packable only when every present min/max value fits its
    numpy lane *exactly* (int64 range for INTEGER/DATE/BOOLEAN, lossless
    float64 for DOUBLE — NaN and 2**53-overflowing ints are rejected —
    str for VARCHAR) and all partitions agree on the lane. Python
    compares mixed numeric types exactly; numpy promotes int64 vs
    float64 lossily, so any value or mix we cannot prove exact routes
    the whole pruner to the scalar path instead.
    """
    n = len(zone_maps)
    present = np.zeros(n, dtype=bool)
    has_min = np.zeros(n, dtype=bool)
    rows = np.zeros(n, dtype=np.int64)
    nulls = np.zeros(n, dtype=np.int64)
    kind: str | None = None
    lo_vals: list[Any] = [None] * n
    hi_vals: list[Any] = [None] * n

    for i, zone_map in enumerate(zone_maps):
        stats = zone_map.columns.get(name)
        if stats is None or not stats.present:
            continue
        this_kind = _kind_of(stats.dtype)
        if this_kind is None or (kind is not None and this_kind != kind):
            return None
        kind = this_kind
        present[i] = True
        rows[i] = stats.row_count
        nulls[i] = stats.null_count
        if stats.min_value is None:
            continue
        lo = _pack_value(stats.min_value, kind)
        hi = _pack_value(stats.max_value, kind)
        if lo is None or hi is None:
            return None
        has_min[i] = True
        lo_vals[i] = lo
        hi_vals[i] = hi

    if kind is None:
        # No partition has stats for this column: every row is
        # "unknown"; the lane is arbitrary.
        kind = _INT_KIND
    if kind == _STR_KIND:
        lo_arr = np.array([v if v is not None else "" for v in lo_vals],
                          dtype=object)
        hi_arr = np.array([v if v is not None else "" for v in hi_vals],
                          dtype=object)
    else:
        np_dtype = np.int64 if kind == _INT_KIND else np.float64
        lo_arr = np.array([v if v is not None else 0 for v in lo_vals],
                          dtype=np_dtype)
        hi_arr = np.array([v if v is not None else 0 for v in hi_vals],
                          dtype=np_dtype)
    return _ColumnVectors(kind, lo_arr, hi_arr, present, has_min,
                          rows, nulls)


def _pack_value(value: Any, kind: str) -> Any:
    """Convert one stats value to its lane, or None if not exact."""
    if kind == _STR_KIND:
        return value if isinstance(value, str) else None
    if kind == _INT_KIND:
        if isinstance(value, int) and _INT64_MIN <= value <= _INT64_MAX:
            return int(value)
        return None
    # _FLOAT_KIND
    if isinstance(value, (int, float)):
        as_float = float(value)
        if as_float == value:  # rejects NaN and 2**53-lossy ints
            return as_float
    return None


class StatsIndex:
    """Columnar (SoA) view of a table's zone maps for bulk pruning.

    Rows are partitions in metadata-store registration order. Column
    vectors are packed lazily, only for columns a kernel actually
    references, and cached. The index is immutable; tables evolve by
    building a successor via :meth:`with_changes` (copy-on-write from
    the metadata store's per-table dirty deltas), so concurrent readers
    always see a consistent snapshot.
    """

    def __init__(self, entries: Iterable[tuple[int, ZoneMap]] = ()):
        pairs = list(entries)
        self._pids: list[int] = [pid for pid, _ in pairs]
        self._zone_maps: list[ZoneMap] = [zm for _, zm in pairs]
        self._rows: dict[int, int] = {
            pid: row for row, pid in enumerate(self._pids)}
        self.row_counts: np.ndarray = np.array(
            [zm.row_count for zm in self._zone_maps], dtype=np.int64)
        self._columns: dict[str, _ColumnVectors | None] = {}
        self._lock = threading.Lock()

    @classmethod
    def from_entries(
            cls, entries: Iterable[tuple[int, ZoneMap]]) -> "StatsIndex":
        return cls(entries)

    def __len__(self) -> int:
        return len(self._pids)

    @property
    def partition_ids(self) -> tuple[int, ...]:
        return tuple(self._pids)

    def entries(self) -> list[tuple[int, ZoneMap]]:
        return list(zip(self._pids, self._zone_maps))

    def row_of(self, partition_id: int) -> int | None:
        """Index row for a partition id, or None if not indexed."""
        return self._rows.get(partition_id)

    def zone_map_at(self, row: int) -> ZoneMap:
        """The exact ZoneMap object indexed at ``row``.

        Callers compare it by identity against the zone map they hold:
        a mismatch (degraded ``without_stats()`` copies, stale rows)
        means the vectorized verdict does not describe their object.
        """
        return self._zone_maps[row]

    def column(self, name: str) -> _ColumnVectors | None:
        """Packed vectors for ``name`` (lowercase), or None if the
        column cannot be packed exactly."""
        with self._lock:
            if name not in self._columns:
                self._columns[name] = _pack_column(name, self._zone_maps)
            return self._columns[name]

    def with_changes(
            self, changes: Mapping[int, ZoneMap | None]) -> "StatsIndex":
        """Successor index with per-partition deltas applied.

        ``None`` drops a partition; a ZoneMap replaces in place (the
        metadata store keeps a re-registered partition's position) or
        appends in delta order (ids are globally monotonic and never
        reused, so unregister-then-register of one id cannot occur).
        """
        replaced = set()
        entries: list[tuple[int, ZoneMap]] = []
        for pid, zone_map in zip(self._pids, self._zone_maps):
            if pid in changes:
                replaced.add(pid)
                replacement = changes[pid]
                if replacement is None:
                    continue
                entries.append((pid, replacement))
            else:
                entries.append((pid, zone_map))
        for pid, zone_map in changes.items():
            if pid not in replaced and zone_map is not None:
                entries.append((pid, zone_map))
        return StatsIndex(entries)


# ----------------------------------------------------------------------
# Kernel compilation
# ----------------------------------------------------------------------
class _Unbindable(Exception):
    """A compiled node cannot bind to this index (lane mismatch,
    unpackable column, …): classify must answer "fall back"."""


#: A compiled node: index -> (can_true, can_false, maybe_null) masks.
_NodeFn = Callable[[StatsIndex], tuple[np.ndarray, np.ndarray, np.ndarray]]

_FLIP_OP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
            "=": "=", "<>": "<>"}


def _bind_literal(value: Any, kind: str) -> Any:
    """Bind a (DATE-normalized) literal to a column lane.

    Refuses any pairing numpy would compare differently from Python:
    float literals against the int64 lane (int64→float64 promotion is
    lossy), non-exact floats, ints beyond int64, NaN, str/numeric
    mixes (Python raises TypeError there — the scalar fallback
    reproduces the raise).
    """
    if kind == _STR_KIND:
        if isinstance(value, str):
            return value
        raise _Unbindable(f"non-string literal {value!r} on str lane")
    if kind == _INT_KIND:
        if (isinstance(value, int)
                and _INT64_MIN <= value <= _INT64_MAX):
            return int(value)
        raise _Unbindable(f"literal {value!r} not exact on int64 lane")
    if isinstance(value, (int, float)):
        as_float = float(value)
        if as_float == value:
            return as_float
    raise _Unbindable(f"literal {value!r} not exact on float64 lane")


def _column(index: StatsIndex, name: str) -> _ColumnVectors:
    vectors = index.column(name)
    if vectors is None:
        raise _Unbindable(f"column {name!r} is not packable")
    return vectors


def _as_bool(array: np.ndarray) -> np.ndarray:
    """Comparisons on object (str) lanes yield object arrays."""
    return np.asarray(array, dtype=bool)


def _compare_masks(op: str, lo: np.ndarray, hi: np.ndarray,
                   value: Any) -> tuple[np.ndarray, np.ndarray]:
    """(can_true, can_false) of ``column op value`` for valued rows.

    Vectorized transcription of ``ranges._range_compare`` with the
    right side a point literal (b_lo == b_hi == value).
    """
    if op == "<":
        return _as_bool(lo < value), _as_bool(hi >= value)
    if op == "<=":
        return _as_bool(lo <= value), _as_bool(hi > value)
    if op == ">":
        return _as_bool(hi > value), _as_bool(lo <= value)
    if op == ">=":
        return _as_bool(hi >= value), _as_bool(lo < value)
    point_hit = _as_bool(lo == value) & _as_bool(hi == value)
    overlap = _as_bool(lo <= value) & _as_bool(value <= hi)
    if op == "=":
        return overlap, ~point_hit
    return ~point_hit, overlap  # "<>"


def _leaf(name: str,
          value_masks: Callable[[_ColumnVectors],
                                tuple[np.ndarray, np.ndarray]],
          extra_maybe_null: bool = False) -> _NodeFn:
    """Assemble a leaf node from its valued-case mask builder.

    The unknown / NULL-only / empty cases are identical for Compare,
    InList and StartsWith (see ``_range_compare`` and friends): unknown
    → (T, T, T); min None with nulls → (F, F, T); empty → (F, F, F).
    ``extra_maybe_null`` forces NULL possibility even for null-free
    partitions (an IN list containing NULL).
    """

    def node(index: StatsIndex):
        vectors = _column(index, name)
        can_true_v, can_false_v = value_masks(vectors)
        valued = vectors.valued
        can_true = vectors.unknown | (valued & can_true_v)
        can_false = vectors.unknown | (valued & can_false_v)
        if extra_maybe_null:
            # NULL in the IN list: every valued row might produce NULL.
            maybe_null = vectors.unknown | vectors.novalue_mn | valued
        else:
            maybe_null = (vectors.unknown | vectors.novalue_mn
                          | vectors.nulls_pos)
        return can_true, can_false, maybe_null

    return node


def _compile_compare(expr: ast.Compare) -> _NodeFn | None:
    left, right, op = expr.left, expr.right, expr.op
    if isinstance(left, ast.Literal) and isinstance(right, ast.ColumnRef):
        left, right = right, left
        op = _FLIP_OP[op]
    if not (isinstance(left, ast.ColumnRef)
            and isinstance(right, ast.Literal)):
        return None
    if right.value is None:
        return None  # NULL literal: null_only semantics, keep scalar
    value = _comparison_value(right.value)
    name = left.name

    def value_masks(vectors: _ColumnVectors):
        bound = _bind_literal(value, vectors.kind)
        return _compare_masks(op, vectors.lo, vectors.hi, bound)

    return _leaf(name, value_masks)


def _compile_in_list(expr: ast.InList) -> _NodeFn | None:
    if not isinstance(expr.child, ast.ColumnRef):
        return None
    values = [_comparison_value(v) for v in expr.values if v is not None]
    list_has_null = len(values) < len(expr.values)
    name = expr.child.name

    def value_masks(vectors: _ColumnVectors):
        bound = [_bind_literal(v, vectors.kind) for v in values]
        lo, hi = vectors.lo, vectors.hi
        n = len(lo)
        can_true = np.zeros(n, dtype=bool)
        hit = np.zeros(n, dtype=bool)
        for v in bound:
            can_true |= _as_bool(lo <= v) & _as_bool(v <= hi)
            hit |= _as_bool(lo == v)
        point = _as_bool(lo == hi)
        can_false = ~(point & hit)
        return can_true, can_false

    return _leaf(name, value_masks, extra_maybe_null=list_has_null)


def _compile_startswith(expr: ast.StartsWith) -> _NodeFn | None:
    if not isinstance(expr.child, ast.ColumnRef):
        return None
    needle = expr.needle
    name = expr.child.name

    def value_masks(vectors: _ColumnVectors):
        if vectors.kind != _STR_KIND:
            # Scalar path raises TypeError comparing str vs numbers;
            # route there so behavior (the raise) is identical.
            raise _Unbindable(f"STARTSWITH on non-string lane {name!r}")
        lo, hi = vectors.lo, vectors.hi
        n = len(lo)
        if needle == "":
            return np.ones(n, dtype=bool), np.zeros(n, dtype=bool)
        # Strings starting with the needle form [needle, succ(needle));
        # succ is None when every character is maximal (interval is
        # [needle, +inf)). Mirrors ``ranges._prefix_flags`` exactly —
        # a fixed-length max-codepoint cap would wrongly prune lo
        # values that extend the needle with more maximal characters.
        succ = prefix_successor(needle)
        if succ is None:
            below_succ = np.ones(n, dtype=bool)
        else:
            below_succ = _as_bool(lo < succ)
        can_true = below_succ & _as_bool(needle <= hi)
        all_match = np.fromiter(
            (a.startswith(needle) and b.startswith(needle)
             for a, b in zip(lo, hi)),
            dtype=bool, count=n)
        return can_true, ~all_match

    return _leaf(name, value_masks)


def _compile_is_null(expr: ast.IsNull) -> _NodeFn | None:
    if not isinstance(expr.child, ast.ColumnRef):
        return None
    name = expr.child.name
    negated = expr.negated

    def node(index: StatsIndex):
        vectors = _column(index, name)
        is_null = vectors.isnull_possible
        not_null = vectors.notnull_possible
        can_true, can_false = ((not_null, is_null) if negated
                               else (is_null, not_null))
        maybe_null = np.zeros(len(is_null), dtype=bool)
        return can_true, can_false, maybe_null

    return node


def _compile_literal(expr: ast.Literal) -> _NodeFn | None:
    if expr.value is True or expr.value is False:
        truth = expr.value is True

        def node(index: StatsIndex):
            n = len(index)
            ones = np.ones(n, dtype=bool)
            zeros = np.zeros(n, dtype=bool)
            return ((ones, zeros, zeros) if truth
                    else (zeros, ones, zeros))

        return node
    return None


def _compile_node(expr: ast.Expr) -> _NodeFn | None:
    if isinstance(expr, ast.And):
        children = [_compile_node(c) for c in expr.children()]
        if not children or any(c is None for c in children):
            return None

        def node_and(index: StatsIndex):
            triples = [c(index) for c in children]
            can_true = np.logical_and.reduce([t[0] for t in triples])
            can_false = np.logical_or.reduce([t[1] for t in triples])
            maybe_null = np.logical_or.reduce([t[2] for t in triples])
            return can_true, can_false, maybe_null

        return node_and
    if isinstance(expr, ast.Or):
        children = [_compile_node(c) for c in expr.children()]
        if not children or any(c is None for c in children):
            return None

        def node_or(index: StatsIndex):
            triples = [c(index) for c in children]
            # A child TRUE on every row makes the OR TRUE on every row.
            always = np.logical_or.reduce(
                [t[0] & ~t[1] & ~t[2] for t in triples])
            can_true = np.logical_or.reduce([t[0] for t in triples])
            can_false = (np.logical_and.reduce([t[1] for t in triples])
                         & ~always)
            maybe_null = (~always & np.logical_or.reduce(
                [t[2] for t in triples]))
            return can_true, can_false, maybe_null

        return node_or
    if isinstance(expr, ast.Not):
        child = _compile_node(expr.child)
        if child is None:
            return None

        def node_not(index: StatsIndex):
            can_true, can_false, maybe_null = child(index)
            return can_false, can_true, maybe_null

        return node_not
    if isinstance(expr, ast.Compare):
        return _compile_compare(expr)
    if isinstance(expr, ast.InList):
        return _compile_in_list(expr)
    if isinstance(expr, ast.IsNull):
        return _compile_is_null(expr)
    if isinstance(expr, ast.StartsWith):
        return _compile_startswith(expr)
    if isinstance(expr, ast.Literal):
        return _compile_literal(expr)
    return None


class PruningKernel:
    """A predicate compiled to one vectorized classification pass."""

    __slots__ = ("predicate", "_root")

    def __init__(self, predicate: ast.Expr, root: _NodeFn):
        self.predicate = predicate
        self._root = root

    def classify(self, index: StatsIndex) -> np.ndarray | None:
        """int8 verdict codes for every index row, or None when the
        kernel cannot bind to this index (→ caller falls back)."""
        try:
            can_true, can_false, maybe_null = self._root(index)
        except _Unbindable:
            return None
        codes = np.full(len(index), MAYBE_CODE, dtype=np.int8)
        codes[can_true & ~can_false & ~maybe_null] = ALWAYS_CODE
        codes[~can_true] = NEVER_CODE
        codes[index.row_counts == 0] = NEVER_CODE
        return codes


def compile_pruning_kernel(predicate: ast.Expr) -> PruningKernel | None:
    """Compile ``predicate`` to a :class:`PruningKernel`, or None when
    any node falls outside the exactly-replicated subset."""
    root = _compile_node(predicate)
    if root is None:
        return None
    return PruningKernel(predicate, root)


# ----------------------------------------------------------------------
# Runtime kernels: top-k boundaries and join-filter summaries
# ----------------------------------------------------------------------
def topk_skip_mask(index: StatsIndex, column: str, desc: bool,
                   value: Any) -> np.ndarray | None:
    """Boolean skip mask of a top-k boundary over all index rows.

    ``value`` is the unwrapped boundary value (the k-th best ORDER BY
    key). Transcribes ``TopKPruner.best_possible_rank`` + the
    strictly-worse comparison exactly:

    * stats missing / ``present=False`` → best rank ``(2,)`` → keep;
    * present but no min/max (all-NULL, empty) → NULL rank → skip;
    * valued → skip iff max < value (DESC) / min > value (ASC).

    Returns None when the column or the boundary value cannot bind to
    a lane exactly (→ caller falls back to the scalar oracle).
    """
    vectors = index.column(column)
    if vectors is None:
        return None
    try:
        bound = _bind_literal(value, vectors.kind)
    except _Unbindable:
        return None
    worse = (_as_bool(vectors.hi < bound) if desc
             else _as_bool(vectors.lo > bound))
    valued = vectors.present & vectors.has_min
    no_values = vectors.present & ~vectors.has_min
    return no_values | (valued & worse)


def join_may_join_mask(index: StatsIndex, column: str,
                       summary: Any) -> np.ndarray | None:
    """Boolean may-join mask of a build-side summary over index rows.

    Vectorizes ``JoinPruner.partition_may_join`` for the interval
    summaries (:class:`~repro.pruning.summaries.MinMaxSummary`, one
    overlap test; :class:`~repro.pruning.summaries.RangeSetSummary`,
    an OR over its bounded interval list). Bloom/Cuckoo/Xor summaries
    answer range probes value-by-value and stay scalar — returns None,
    as it does when a bound cannot bind to the column's lane.

    Semantics match the scalar oracle exactly: missing metadata keeps
    the partition (fail open), all-NULL probe keys never join, and
    valued partitions join iff some summary interval overlaps
    ``[min, max]`` (inclusive, as ``might_overlap_range`` answers).
    """
    from .summaries import MinMaxSummary, RangeSetSummary

    if isinstance(summary, MinMaxSummary):
        ranges = [] if summary.is_empty else [(summary.lo, summary.hi)]
    elif isinstance(summary, RangeSetSummary):
        ranges = list(summary.ranges)
    else:
        return None
    vectors = index.column(column)
    if vectors is None:
        return None
    overlap = np.zeros(len(index), dtype=bool)
    try:
        for lo, hi in ranges:
            b_lo = _bind_literal(lo, vectors.kind)
            b_hi = _bind_literal(hi, vectors.kind)
            overlap |= (_as_bool(vectors.lo <= b_hi)
                        & _as_bool(b_lo <= vectors.hi))
    except _Unbindable:
        return None
    valued = vectors.present & vectors.has_min
    return vectors.unknown | (valued & overlap)


# ----------------------------------------------------------------------
# Drop-in pruner
# ----------------------------------------------------------------------
class VectorizedFilterPruner:
    """Bit-identical ``FilterPruner`` replacement with bulk kernels.

    Compiles the predicate once; at prune time every scan-set entry
    whose ZoneMap object is the one the index classified takes its
    verdict from the kernel's verdict array, everything else goes
    through an embedded scalar ``FilterPruner``. ``checks`` counts one
    check per partition exactly like the scalar path does for
    unwidened predicates (widening only rewrites LIKE, which never
    compiles, so a compiled kernel always runs single-pass).

    ``mode`` after :meth:`prune`: ``"vectorized"`` (all entries bulk),
    ``"mixed"`` (some fell back), or ``"fallback"``.
    """

    def __init__(self, predicate: ast.Expr, schema: Schema,
                 detect_fully_matching: bool = True,
                 index: StatsIndex | None = None):
        self.predicate = predicate
        self.schema = schema
        self.detect_fully_matching = detect_fully_matching
        self.index = index
        self._scalar = FilterPruner(
            predicate, schema,
            detect_fully_matching=detect_fully_matching)
        self.kernel: PruningKernel | None = None
        if widen_for_pruning(predicate) == predicate:
            self.kernel = compile_pruning_kernel(predicate)
        self.vector_checks = 0
        self.mode = "fallback"

    @property
    def fallback_checks(self) -> int:
        return self._scalar.checks

    @property
    def checks(self) -> int:
        return self.vector_checks + self._scalar.checks

    def prune(self, scan_set: ScanSet) -> PruningResult:
        index = self.index
        codes = None
        if self.kernel is not None and index is not None and len(index):
            codes = self.kernel.classify(index)
        kept: list[tuple[int, ZoneMap]] = []
        pruned_ids: list[int] = []
        fully_matching: list[int] = []
        for partition_id, zone_map in scan_set:
            verdict = None
            if codes is not None:
                row = index.row_of(partition_id)
                if row is not None and index.zone_map_at(row) is zone_map:
                    self.vector_checks += 1
                    verdict = _CODE_TO_TRISTATE[int(codes[row])]
                    if (verdict is TriState.ALWAYS
                            and not self.detect_fully_matching):
                        verdict = TriState.MAYBE
            if verdict is None:
                verdict = self._scalar.classify(zone_map)
            if verdict is TriState.NEVER:
                pruned_ids.append(partition_id)
                continue
            kept.append((partition_id, zone_map))
            if verdict is TriState.ALWAYS:
                fully_matching.append(partition_id)
        if self.vector_checks and not self._scalar.checks:
            self.mode = "vectorized"
        elif self.vector_checks:
            self.mode = "mixed"
        else:
            self.mode = "fallback"
        return PruningResult(
            technique=PruneCategory.FILTER,
            before=len(scan_set),
            kept=scan_set.with_entries(kept),
            pruned_ids=pruned_ids,
            fully_matching_ids=fully_matching,
            checks=self.checks,
        )
