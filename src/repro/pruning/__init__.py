"""Partition pruning techniques (the paper's core contribution).

* :mod:`.base` — scan sets, pruning results, and shared statistics;
* :mod:`.filter_pruning` — min/max filter pruning (§3);
* :mod:`.pruning_tree` — adaptive filter reordering and cutoff (§3.2);
* :mod:`.fully_matching` — fully-matching partition detection (§4.2);
* :mod:`.limit_pruning` — scan-set minimization for LIMIT queries (§4);
* :mod:`.topk_pruning` — boundary-based runtime pruning for top-k (§5);
* :mod:`.summaries` — build-side value summaries (§6.1);
* :mod:`.join_pruning` — probe-side partition pruning for joins (§6);
* :mod:`.flow` — the combined pruning pipeline and per-query records (§7);
* :mod:`.predicate_cache` — query-driven partition caching (§8.2);
* :mod:`.stats_index` — vectorized zone-map index and pruning kernels;
* :mod:`.sketches` — secondary per-partition sketches (n-gram filters,
  dictionaries, histograms) plus per-query-shape skip sets.
"""

from .base import PruneCategory, PruningResult, ScanSet
from .filter_pruning import FilterPruner
from .stats_index import (
    PruningKernel,
    StatsIndex,
    VectorizedFilterPruner,
    compile_pruning_kernel,
)
from .fully_matching import find_fully_matching_inverted
from .limit_pruning import LimitPruneOutcome, LimitPruner
from .topk_pruning import (
    Boundary,
    OrderStrategy,
    TopKPruner,
    initialize_boundary,
)
from .join_pruning import JoinPruner
from .summaries import BloomFilter, MinMaxSummary, RangeSetSummary
from .predicate_cache import PredicateCache
from .flow import FlowRecord, PruningFlow
from .sketches import (
    PartitionSketches,
    ShapeSkipSet,
    SketchConfig,
    SketchIndex,
    SketchPruner,
    build_partition_sketches,
    compile_sketch_probes,
    is_sketch_prunable,
)

__all__ = [
    "PruneCategory",
    "PruningResult",
    "ScanSet",
    "FilterPruner",
    "find_fully_matching_inverted",
    "LimitPruneOutcome",
    "LimitPruner",
    "Boundary",
    "OrderStrategy",
    "TopKPruner",
    "initialize_boundary",
    "JoinPruner",
    "BloomFilter",
    "MinMaxSummary",
    "RangeSetSummary",
    "PredicateCache",
    "FlowRecord",
    "PruningFlow",
    "PruningKernel",
    "StatsIndex",
    "VectorizedFilterPruner",
    "compile_pruning_kernel",
    "PartitionSketches",
    "ShapeSkipSet",
    "SketchConfig",
    "SketchIndex",
    "SketchPruner",
    "build_partition_sketches",
    "compile_sketch_probes",
    "is_sketch_prunable",
]
