"""Scan sets and pruning results.

A *scan set* is "a serialized list of micro-partition identifiers to be
processed as part of the query" (§2). Pruning techniques transform scan
sets; :class:`PruningResult` captures one technique's effect so the
profiler can attribute savings per technique (Figures 1, 11).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from ..errors import StorageError
from ..storage.zonemap import ZoneMap


class ScanSet:
    """An ordered list of (partition_id, zone_map) entries to scan.

    Order matters: top-k pruning processes partitions in a boundary-
    friendly order (§5.3) and LIMIT pruning puts fully-matching
    partitions first (§4.1).
    """

    def __init__(self, entries: Iterable[tuple[int, ZoneMap]] = (),
                 degraded_ids: Iterable[int] = ()):
        self._entries: list[tuple[int, ZoneMap]] = list(entries)
        #: lazy id -> zone-map mapping; ``_entries`` never mutates
        #: after construction (transforms build new scan sets), so
        #: building it twice under a race is merely wasted work.
        self._by_id: dict[int, ZoneMap] | None = None
        #: partitions whose metadata could not be fetched — their zone
        #: maps are stats-free placeholders, so every pruning check
        #: answers MAYBE and they are always scanned (fail open).
        self.degraded_ids: frozenset[int] = frozenset(degraded_ids)
        #: metadata-read retry accounting for building this scan set.
        self.metadata_retries: int = 0
        self.metadata_backoff_ms: float = 0.0

    @property
    def degraded(self) -> bool:
        """True when any entry lost its metadata to a failure."""
        return bool(self.degraded_ids)

    @property
    def partition_ids(self) -> list[int]:
        return [pid for pid, _ in self._entries]

    @property
    def entries(self) -> list[tuple[int, ZoneMap]]:
        return list(self._entries)

    def _index(self) -> dict[int, ZoneMap]:
        if self._by_id is None:
            self._by_id = dict(self._entries)
        return self._by_id

    def zone_map(self, partition_id: int) -> ZoneMap:
        return self._index()[partition_id]

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[tuple[int, ZoneMap]]:
        return iter(self._entries)

    def __contains__(self, partition_id: int) -> bool:
        return partition_id in self._index()

    def total_rows(self) -> int:
        return sum(zm.row_count for _, zm in self._entries)

    def restrict(self, keep_ids: Iterable[int]) -> "ScanSet":
        """Keep only the given partitions, preserving order."""
        keep = set(keep_ids)
        return self._derived((pid, zm) for pid, zm in self._entries
                             if pid in keep)

    def reorder(self, ordered_ids: Iterable[int]) -> "ScanSet":
        """Reorder entries to match ``ordered_ids`` (must be a subset)."""
        by_id = self._index()
        return self._derived((pid, by_id[pid]) for pid in ordered_ids)

    def with_entries(
            self, entries: Iterable[tuple[int, ZoneMap]]) -> "ScanSet":
        """A transformed scan set (reordered / filtered entries) that
        keeps this one's degradation and metadata-retry accounting.

        Pruning techniques and order strategies must build their output
        through this (or :meth:`restrict`/:meth:`reorder`) rather than
        ``ScanSet(entries)`` — otherwise ``degraded_ids`` is lost and
        runtime pruners can no longer tell which entries must fail open.
        """
        return self._derived(entries)

    def _derived(self, entries: Iterable[tuple[int, ZoneMap]]) -> "ScanSet":
        """A transformed scan set carrying this one's degradation state."""
        derived = ScanSet(entries)
        derived.degraded_ids = frozenset(
            pid for pid, _ in derived._entries) & self.degraded_ids
        derived.metadata_retries = self.metadata_retries
        derived.metadata_backoff_ms = self.metadata_backoff_ms
        return derived

    # ------------------------------------------------------------------
    # Serialization: scan sets travel from cloud services to warehouse
    # workers (§2). Only partition ids are shipped; workers re-fetch
    # metadata from the metadata store. Effective pruning therefore
    # shrinks the serialized payload (§2.1 benefit 4).
    # ------------------------------------------------------------------
    _MAGIC = b"SSET"

    def serialize(self) -> bytes:
        """Encode as magic + count + delta-varint partition ids."""
        ids = self.partition_ids
        payload = bytearray(self._MAGIC)
        payload += struct.pack("<I", len(ids))
        previous = 0
        for pid in ids:
            delta = pid - previous
            previous = pid
            payload += _zigzag_varint(delta)
        return bytes(payload)

    @classmethod
    def deserialize(cls, data: bytes,
                    zone_map_lookup: Callable[[int], ZoneMap]
                    ) -> "ScanSet":
        """Decode a serialized scan set, resolving metadata by lookup.

        Raises:
            StorageError: if the payload is malformed.
        """
        if data[:4] != cls._MAGIC:
            raise StorageError("not a serialized scan set")
        (count,) = struct.unpack_from("<I", data, 4)
        offset = 8
        entries = []
        previous = 0
        for _ in range(count):
            delta, offset = _read_zigzag_varint(data, offset)
            previous += delta
            entries.append((previous, zone_map_lookup(previous)))
        if offset != len(data):
            raise StorageError("trailing bytes in serialized scan set")
        return cls(entries)

    def serialized_size(self) -> int:
        return len(self.serialize())

    def __repr__(self) -> str:
        return f"ScanSet({self.partition_ids})"


def _zigzag_varint(value: int) -> bytes:
    encoded = (value << 1) ^ (value >> 63) if value < 0 \
        else value << 1
    out = bytearray()
    while True:
        byte = encoded & 0x7F
        encoded >>= 7
        if encoded:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _read_zigzag_varint(data: bytes, offset: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise StorageError("truncated varint in scan set")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            break
        shift += 7
    value = (result >> 1) ^ -(result & 1)
    return value, offset


class PruneCategory:
    """Names of the pruning techniques, used as profile keys."""

    FILTER = "filter"
    SKETCH = "sketch"
    JOIN = "join"
    LIMIT = "limit"
    TOPK = "topk"
    ALL = (FILTER, SKETCH, JOIN, LIMIT, TOPK)


@dataclass
class PruningResult:
    """Outcome of applying one pruning technique to a scan set.

    Attributes:
        technique: a :class:`PruneCategory` name.
        before: partition count entering this technique.
        kept: the surviving scan set.
        pruned_ids: partitions removed by this technique.
        fully_matching_ids: partitions proven fully-matching (§4.1);
            only filter pruning populates this.
        checks: number of (partition, predicate) pruning evaluations
            performed, for the cost model.
    """

    technique: str
    before: int
    kept: ScanSet
    pruned_ids: list[int] = field(default_factory=list)
    fully_matching_ids: list[int] = field(default_factory=list)
    checks: int = 0

    @property
    def after(self) -> int:
        return len(self.kept)

    @property
    def pruned(self) -> int:
        return len(self.pruned_ids)

    @property
    def pruning_ratio(self) -> float:
        """Fraction of incoming partitions removed (0 when none came in)."""
        if self.before == 0:
            return 0.0
        return self.pruned / self.before

    def __repr__(self) -> str:
        return (f"PruningResult({self.technique}: {self.before} -> "
                f"{self.after}, ratio={self.pruning_ratio:.2%})")
