"""Approximate set-membership filters beyond Bloom (§1's citations).

Implements, from scratch, the two alternatives the paper's introduction
lists next to Bloom filters:

* :class:`CuckooFilter` [Fan et al., CoNEXT'14] — buckets of four
  8-bit fingerprints with partial-key cuckoo hashing; supports
  deletion, which Bloom filters cannot.
* :class:`XorFilter` [Graf & Lemire, JEA'20] — a static 3-wise XOR
  structure built by hypergraph peeling; smaller than Bloom/Cuckoo for
  the same false-positive rate but immutable once built.

Both share the conservative contract of every summary here: no false
negatives, bounded false positives.
"""

from __future__ import annotations

import datetime
import random
from typing import Any, Iterable

import numpy as np

_MASK64 = 0xFFFFFFFFFFFFFFFF
_SEED_MIX = 0x9E3779B97F4A7C15
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def _canonical_bytes(value: Any) -> bytes:
    """A type-tagged byte encoding with no accidental collisions."""
    if isinstance(value, (bool, np.bool_)):
        return b"b1" if value else b"b0"
    if isinstance(value, (int, np.integer)):
        return b"i" + str(int(value)).encode()
    if isinstance(value, (float, np.floating)):
        return b"f" + repr(float(value)).encode()
    if isinstance(value, str):
        return b"s" + value.encode("utf-8")
    if isinstance(value, datetime.date):
        return b"d" + value.isoformat().encode()
    return b"o" + repr(value).encode()


def _hash64(value: Any, seed: int) -> int:
    """Seeded FNV-1a over a canonical encoding, murmur-finalized.

    Python's builtin ``hash`` has *permanent* collisions — hash(0) ==
    hash('') and hash(-1) == hash(-2) — that no seeding scheme layered
    on top can separate, which breaks xor-filter peeling. Hashing the
    canonical bytes sidesteps ``hash`` entirely.
    """
    h = (_FNV_OFFSET ^ (seed * _SEED_MIX)) & _MASK64
    for byte in _canonical_bytes(value):
        h ^= byte
        h = (h * _FNV_PRIME) & _MASK64
    h ^= h >> 33
    h = (h * 0xFF51AFD7ED558CCD) & _MASK64
    h ^= h >> 33
    return h


class CuckooFilter:
    """A cuckoo filter with 4-slot buckets and 8-bit fingerprints."""

    BUCKET_SIZE = 4
    MAX_KICKS = 500

    def __init__(self, expected_items: int):
        expected_items = max(1, expected_items)
        n_buckets = 1
        # ~95% max load factor for 4-slot buckets; power-of-two count.
        while n_buckets * self.BUCKET_SIZE * 0.95 < expected_items:
            n_buckets *= 2
        self.n_buckets = n_buckets
        self.buckets = np.zeros((n_buckets, self.BUCKET_SIZE),
                                dtype=np.uint8)
        self.count = 0
        self._rng = random.Random(0xC0FFEE)

    # -- hashing -----------------------------------------------------------
    def _fingerprint(self, value: Any) -> int:
        fp = _hash64(value, 7) & 0xFF
        return fp or 1  # 0 marks an empty slot

    def _index1(self, value: Any) -> int:
        return _hash64(value, 11) % self.n_buckets

    def _alt_index(self, index: int, fingerprint: int) -> int:
        # Partial-key cuckoo hashing: the alternate bucket depends only
        # on the fingerprint, so relocation never needs the original
        # key. Forcing the XOR delta odd guarantees the alternate
        # bucket differs from the home bucket (n_buckets is a power of
        # two); an even delta would collapse both homes onto one
        # bucket and livelock eviction in tiny filters.
        return (index ^ (_hash64(int(fingerprint), 13) | 1)) \
            % self.n_buckets

    # -- operations -----------------------------------------------------------
    def add(self, value: Any) -> bool:
        """Insert; returns False when the filter is too full."""
        if value is None:
            return True
        fingerprint = self._fingerprint(value)
        i1 = self._index1(value)
        i2 = self._alt_index(i1, fingerprint)
        for index in (i1, i2):
            if self._place(index, fingerprint):
                self.count += 1
                return True
        # Evict: kick random residents between their two homes.
        index = self._rng.choice((i1, i2))
        for _ in range(self.MAX_KICKS):
            slot = self._rng.randrange(self.BUCKET_SIZE)
            fingerprint, self.buckets[index, slot] = (
                int(self.buckets[index, slot]), fingerprint)
            index = self._alt_index(index, fingerprint)
            if self._place(index, fingerprint):
                self.count += 1
                return True
        return False

    def _place(self, index: int, fingerprint: int) -> bool:
        row = self.buckets[index]
        for slot in range(self.BUCKET_SIZE):
            if row[slot] == 0:
                row[slot] = fingerprint
                return True
        return False

    def add_all(self, values: Iterable[Any]) -> bool:
        """Insert distinct values (set semantics).

        Duplicates are skipped: a cuckoo filter can hold at most
        2 x bucket_size copies of one fingerprint before insertion
        livelocks, and membership only needs each value once.
        """
        ok = True
        seen = set()
        for value in values:
            if value in seen:
                continue
            seen.add(value)
            ok = self.add(value) and ok
        return ok

    def might_contain(self, value: Any) -> bool:
        if value is None:
            return False
        fingerprint = self._fingerprint(value)
        i1 = self._index1(value)
        i2 = self._alt_index(i1, fingerprint)
        return (fingerprint in self.buckets[i1]
                or fingerprint in self.buckets[i2])

    def remove(self, value: Any) -> bool:
        """Delete one occurrence; the capability Bloom filters lack."""
        if value is None:
            return False
        fingerprint = self._fingerprint(value)
        i1 = self._index1(value)
        i2 = self._alt_index(i1, fingerprint)
        for index in (i1, i2):
            row = self.buckets[index]
            for slot in range(self.BUCKET_SIZE):
                if row[slot] == fingerprint:
                    row[slot] = 0
                    self.count -= 1
                    return True
        return False

    def might_overlap_range(self, lo: Any, hi: Any,
                            enumeration_limit: int = 1024) -> bool:
        if self.count == 0:
            return False
        if (isinstance(lo, (int, np.integer))
                and isinstance(hi, (int, np.integer))
                and hi - lo + 1 <= enumeration_limit):
            return any(self.might_contain(int(v))
                       for v in range(int(lo), int(hi) + 1))
        return True

    def nbytes(self) -> int:
        return self.n_buckets * self.BUCKET_SIZE


class XorFilter:
    """A static 8-bit xor filter over a fixed key set.

    Construction peels the 3-uniform hypergraph induced by the keys'
    three hash positions; a different seed is retried on (rare) peel
    failures.
    """

    def __init__(self, values: Iterable[Any]):
        self.keys = list({v for v in values if v is not None})
        self.size = max(32, int(1.23 * len(self.keys)) + 32)
        self.segment = self.size // 3
        self.size = self.segment * 3
        self.seed = 0
        self.table = np.zeros(self.size, dtype=np.uint8)
        self._build()

    def _positions(self, value: Any, seed: int) -> tuple[int, int, int]:
        h = _hash64(value, seed)
        segment = self.segment
        return (h % segment,
                segment + (h >> 21) % segment,
                2 * segment + (h >> 42) % segment)

    def _fingerprint(self, value: Any, seed: int) -> int:
        return (_hash64(value, seed ^ 0x5BF0) & 0xFF) or 1

    def _build(self) -> None:
        for seed in range(64):
            order = self._peel(seed)
            if order is not None:
                self.seed = seed
                self._assign(order, seed)
                return
        raise RuntimeError(
            "xor filter construction failed")  # pragma: no cover

    def _peel(self, seed: int):
        occupancy: dict[int, list] = {}
        for key in self.keys:
            for position in self._positions(key, seed):
                occupancy.setdefault(position, []).append(key)
        queue = [p for p, keys in occupancy.items() if len(keys) == 1]
        order = []
        removed = set()
        while queue:
            position = queue.pop()
            keys = [k for k in occupancy.get(position, [])
                    if k not in removed]
            if len(keys) != 1:
                continue
            key = keys[0]
            order.append((key, position))
            removed.add(key)
            for other in self._positions(key, seed):
                if other == position:
                    continue
                remaining = [k for k in occupancy.get(other, [])
                             if k not in removed]
                if len(remaining) == 1:
                    queue.append(other)
        if len(order) != len(self.keys):
            return None
        return order

    def _assign(self, order, seed: int) -> None:
        self.table[:] = 0
        for key, position in reversed(order):
            p0, p1, p2 = self._positions(key, seed)
            value = self._fingerprint(key, seed)
            value ^= int(self.table[p0]) ^ int(self.table[p1]) \
                ^ int(self.table[p2])
            value ^= int(self.table[position])
            self.table[position] = value & 0xFF

    def might_contain(self, value: Any) -> bool:
        if value is None:
            return False
        p0, p1, p2 = self._positions(value, self.seed)
        combined = (int(self.table[p0]) ^ int(self.table[p1])
                    ^ int(self.table[p2]))
        return combined == self._fingerprint(value, self.seed)

    def might_overlap_range(self, lo: Any, hi: Any,
                            enumeration_limit: int = 1024) -> bool:
        if not self.keys:
            return False
        if (isinstance(lo, (int, np.integer))
                and isinstance(hi, (int, np.integer))
                and hi - lo + 1 <= enumeration_limit):
            return any(self.might_contain(int(v))
                       for v in range(int(lo), int(hi) + 1))
        return True

    @property
    def count(self) -> int:
        return len(self.keys)

    def nbytes(self) -> int:
        return self.size
