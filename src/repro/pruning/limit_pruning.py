"""LIMIT pruning: globally I/O-optimal scan sets for LIMIT queries (§4).

If the rows of *fully-matching* partitions cover the LIMIT's ``k``, the
scan set shrinks to the minimum number of fully-matching partitions
whose row counts sum to at least ``k`` — reading only the minimal
number of files required. Otherwise no partition may be dropped, but
starting the scan with fully-matching partitions still promises faster
termination.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable

from .base import PruneCategory, PruningResult, ScanSet


class LimitPruneOutcome(enum.Enum):
    """Why LIMIT pruning did or did not fire (Table 2 categories)."""

    ALREADY_MINIMAL = "already_minimal"    #: scan set was <= 1 partition
    UNSUPPORTED_SHAPE = "unsupported"      #: LIMIT not pushable to scan
    NO_FULLY_MATCHING = "no_fully_matching"
    INSUFFICIENT_ROWS = "insufficient_rows"  #: fully-matching rows < k
    PRUNED_TO_ONE = "pruned_to_one"
    PRUNED_TO_MANY = "pruned_to_many"

    @property
    def pruned(self) -> bool:
        return self in (LimitPruneOutcome.PRUNED_TO_ONE,
                        LimitPruneOutcome.PRUNED_TO_MANY)


@dataclass
class LimitPruneReport:
    """Result of a LIMIT pruning attempt."""

    outcome: LimitPruneOutcome
    result: PruningResult


class LimitPruner:
    """Minimizes a scan set for ``LIMIT k`` using fully-matching info."""

    def __init__(self, k: int):
        if k < 0:
            raise ValueError("LIMIT k must be non-negative")
        self.k = k

    def prune(self, scan_set: ScanSet,
              fully_matching_ids: Iterable[int]) -> LimitPruneReport:
        """Shrink ``scan_set`` for a LIMIT of ``self.k`` rows.

        The caller guarantees the LIMIT was legally pushed down to this
        scan (§4.3); unsupported plan shapes never reach this method.
        """
        fully_matching = [pid for pid in fully_matching_ids
                          if pid in scan_set]
        before = len(scan_set)

        if self.k == 0 and before:
            # LIMIT 0 needs no data at all (BI tools probing schemas).
            # This must precede the already-minimal fast path: a
            # single-partition scan set is NOT minimal for LIMIT 0 —
            # the empty set is — and short-circuiting on size would
            # load one partition that provably contributes nothing.
            return LimitPruneReport(
                LimitPruneOutcome.PRUNED_TO_ONE,
                PruningResult(
                    technique=PruneCategory.LIMIT,
                    before=before,
                    kept=ScanSet(),
                    pruned_ids=scan_set.partition_ids,
                ))

        if before <= 1:
            return LimitPruneReport(
                LimitPruneOutcome.ALREADY_MINIMAL,
                self._no_change(scan_set))

        if not fully_matching:
            return LimitPruneReport(
                LimitPruneOutcome.NO_FULLY_MATCHING,
                self._no_change(scan_set))

        rows_by_id = {pid: scan_set.zone_map(pid).row_count
                      for pid in fully_matching}
        if sum(rows_by_id.values()) < self.k:
            # Cannot guarantee k rows from fully-matching partitions
            # alone; keep everything but scan fully-matching first
            # (§4.1: "starting the table scan with fully-matching
            # partitions promises faster query execution times").
            fm_set = set(fully_matching)
            reordered = (fully_matching
                         + [pid for pid in scan_set.partition_ids
                            if pid not in fm_set])
            return LimitPruneReport(
                LimitPruneOutcome.INSUFFICIENT_ROWS,
                PruningResult(
                    technique=PruneCategory.LIMIT,
                    before=before,
                    kept=scan_set.reorder(reordered),
                    fully_matching_ids=fully_matching,
                ))

        # Greedy minimal cover: biggest fully-matching partitions first.
        chosen: list[int] = []
        covered = 0
        for pid in sorted(fully_matching, key=rows_by_id.__getitem__,
                          reverse=True):
            chosen.append(pid)
            covered += rows_by_id[pid]
            if covered >= self.k:
                break
        kept = scan_set.restrict(chosen)
        pruned_ids = [pid for pid in scan_set.partition_ids
                      if pid not in set(chosen)]
        outcome = (LimitPruneOutcome.PRUNED_TO_ONE if len(chosen) == 1
                   else LimitPruneOutcome.PRUNED_TO_MANY)
        return LimitPruneReport(
            outcome,
            PruningResult(
                technique=PruneCategory.LIMIT,
                before=before,
                kept=kept,
                pruned_ids=pruned_ids,
                fully_matching_ids=fully_matching,
            ))

    @staticmethod
    def _no_change(scan_set: ScanSet) -> PruningResult:
        return PruningResult(
            technique=PruneCategory.LIMIT,
            before=len(scan_set),
            kept=scan_set,
        )
