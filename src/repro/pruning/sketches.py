"""Secondary per-partition sketches beyond zone maps.

Min/max zone maps cannot prune "hostile" predicates: substring
``LIKE '%needle%'`` / ``CONTAINS`` / ``ENDSWITH`` see every partition
as MAYBE, and a low-cardinality ``=`` / ``IN`` literal that happens to
fall inside a wide [min, max] range is equally invisible (§3.1's
imprecise-rewrite gap). This module adds three pluggable secondary
sketches, built per micro-partition at build/recluster time and
registered in the metadata store alongside the zone maps:

* :class:`NGramSketch` — an n-gram (default 3-gram) membership filter
  over a VARCHAR column, backed by the from-scratch
  :class:`~repro.pruning.filters.XorFilter` (or
  :class:`~repro.pruning.filters.CuckooFilter`). A row matching
  ``CONTAINS(s, needle)`` must contain *every* n-gram of the needle,
  so a single provably-absent gram prunes the partition.
* :class:`DictionarySketch` — the exact distinct-value set of a
  low-cardinality column, stored as sorted 64-bit hashes. Tightens
  ``=`` / ``IN`` verdicts beyond min/max (a hash collision merely
  yields a sound false positive).
* :class:`HistogramSketch` — equi-width bucket occupancy over a
  numeric column; an equality literal landing in an empty bucket
  prunes even when the dictionary could not be built.

:class:`SketchPruner` consults the sketches at compile time as an extra
pruning pass after filter pruning; :class:`SketchIndex` packs them as
SoA lanes (mirroring :class:`~repro.pruning.stats_index.StatsIndex`)
so a whole table classifies in vectorized numpy passes that are
bit-identical to the scalar sketch probes. :class:`ShapeSkipSet`
layers provenance-style skip sets on top: recurring query shapes skip
partitions a prior complete execution proved empty, invalidated
through the per-table version counters.

Everything here *fails open*: a missing, degraded, or unbuildable
sketch simply answers "maybe" and the partition is scanned. Sketch
pruning can remove partitions but never proves one fully-matching.
"""

from __future__ import annotations

import datetime
import re
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping

import numpy as np

from ..expr import ast
from ..types import DataType, Schema
from .base import PruneCategory, PruningResult, ScanSet
from .filters import (
    _FNV_OFFSET,
    _FNV_PRIME,
    _MASK64,
    _SEED_MIX,
    CuckooFilter,
    XorFilter,
    _canonical_bytes,
    _hash64,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..storage.micropartition import MicroPartition

#: seed for dictionary-sketch value hashes (shared by the scalar
#: probes and the vectorized lanes, which must agree exactly)
_DICT_SEED = 0x53_4B_45_54  # "SKET"

#: sentinel for a literal that provably cannot equal any column value
#: (e.g. a non-integral float against an INTEGER column)
_IMPOSSIBLE = object()


@dataclass(frozen=True)
class SketchConfig:
    """What to build per partition, and how big it may get."""

    #: n-gram length for string membership filters
    ngram_size: int = 3
    #: skip the n-gram sketch when a partition's column exceeds this
    #: many distinct grams (fail open instead of building a huge filter)
    max_ngrams: int = 8192
    #: membership-filter backend: "xor" (static, vectorizable) or
    #: "cuckoo" (deletable; classified by the scalar path)
    filter_kind: str = "xor"
    #: build the exact dictionary only when a column has at most this
    #: many distinct non-null values
    dictionary_max_entries: int = 64
    #: equi-width bucket count for numeric histograms
    histogram_buckets: int = 32
    #: restrict sketch building to these columns (None = all eligible)
    columns: tuple[str, ...] | None = None

    def to_manifest(self) -> dict:
        """JSON-friendly form for catalog manifests / checkpoints."""
        return {
            "ngram_size": self.ngram_size,
            "max_ngrams": self.max_ngrams,
            "filter_kind": self.filter_kind,
            "dictionary_max_entries": self.dictionary_max_entries,
            "histogram_buckets": self.histogram_buckets,
            "columns": list(self.columns) if self.columns else None,
        }

    @classmethod
    def from_manifest(cls, data: Mapping[str, Any]) -> "SketchConfig":
        columns = data.get("columns")
        return cls(
            ngram_size=int(data.get("ngram_size", 3)),
            max_ngrams=int(data.get("max_ngrams", 8192)),
            filter_kind=str(data.get("filter_kind", "xor")),
            dictionary_max_entries=int(
                data.get("dictionary_max_entries", 64)),
            histogram_buckets=int(data.get("histogram_buckets", 32)),
            columns=tuple(columns) if columns else None,
        )


# ---------------------------------------------------------------------------
# The sketches
# ---------------------------------------------------------------------------
def ngrams_of(text: str, n: int) -> set[str]:
    """All length-``n`` substrings of ``text`` (empty if too short)."""
    return {text[i:i + n] for i in range(len(text) - n + 1)}


def _unique_ngrams_packed(blob: str, n: int) -> Iterable[str]:
    """Distinct n-grams of ``blob`` that contain no NUL character.

    Every code point fits in 21 bits, so an n-gram with ``n <= 3``
    packs into one uint64; windows collapse to unique grams via
    ``np.unique`` in C instead of a Python slice-per-window set
    comprehension. NUL-containing windows (the bulk-path separators)
    are masked out before uniquing, which is exactly the separator
    filter of the scalar path.
    """
    codes = np.frombuffer(
        blob.encode("utf-32-le", "surrogatepass"),
        dtype=np.uint32).astype(np.uint64)
    count = len(codes) - n + 1
    packed = codes[:count].copy()
    ok = codes[:count] != 0
    for j in range(1, n):
        window = codes[j:count + j]
        packed |= window << np.uint64(21 * j)
        ok &= window != 0
    unique = np.unique(packed[ok])
    matrix = np.empty((len(unique), n), dtype=np.uint32)
    for j in range(n):
        matrix[:, j] = ((unique >> np.uint64(21 * j))
                        & np.uint64(0x1FFFFF)).astype(np.uint32)
    decoded = matrix.tobytes().decode("utf-32-le", "surrogatepass")
    return (decoded[i:i + n] for i in range(0, n * len(unique), n))


def _hash64_batch(values: list, seed: int) -> np.ndarray:
    """Vectorized :func:`~repro.pruning.filters._hash64` over many
    values — bit-identical to the scalar hash, which the dictionary
    probes and the vectorized lanes both depend on.

    FNV-1a is sequential per byte but independent across keys, so the
    byte loop runs over the (short) padded width while every key
    advances in one numpy pass.
    """
    return _hash64_batch_multi(values, (seed,))[0]


def _hash64_batch_multi(values: list,
                        seeds: tuple[int, ...]) -> list[np.ndarray]:
    """One hash array per seed, sharing a single byte-matrix setup.

    Encoding and scattering the canonical bytes dominates small
    batches, so hashing the same values under several seeds (value
    hash + fingerprint) costs only one extra FNV accumulation each.
    """
    count = len(values)
    if count == 0:
        return [np.zeros(0, dtype=np.uint64) for _ in seeds]
    encoded = [_canonical_bytes(v) for v in values]
    lengths = np.fromiter((len(b) for b in encoded),
                          dtype=np.int64, count=count)
    width = int(lengths.max())
    # Scatter the concatenated bytes into a padded (count, width)
    # matrix in one pass — no per-key fill loop.
    flat_bytes = np.frombuffer(b"".join(encoded), dtype=np.uint8)
    starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    rows = np.repeat(np.arange(count, dtype=np.int64), lengths)
    cols = np.arange(len(flat_bytes), dtype=np.int64) \
        - np.repeat(starts, lengths)
    matrix = np.zeros((count, width), dtype=np.uint64)
    matrix[rows, cols] = flat_bytes
    prime = np.uint64(_FNV_PRIME)
    out = []
    for seed in seeds:
        h = np.full(count,
                    (_FNV_OFFSET ^ (seed * _SEED_MIX)) & _MASK64,
                    dtype=np.uint64)
        for j in range(width):
            active = lengths > j
            h[active] = (h[active] ^ matrix[active, j]) * prime
        h ^= h >> np.uint64(33)
        h *= np.uint64(0xFF51AFD7ED558CCD)
        h ^= h >> np.uint64(33)
        out.append(h)
    return out


class SketchBuildCache:
    """Cross-partition memo of seed-0 gram hashes for one build batch.

    A table's partitions share most of their n-grams, so when many
    partitions are sketched together (table creation, recluster,
    ``enable_sketches``) only the first occurrence of a gram pays the
    hash cost. Seed 0 is the only seed worth caching: xor-filter
    peeling at seed 0 almost never fails, and retries re-hash anyway.
    """

    __slots__ = ("h", "fp", "dh", "grams")

    def __init__(self):
        self.h: dict[str, int] = {}
        self.fp: dict[str, int] = {}
        self.dh: dict[Any, int] = {}
        #: (partition_id, column) -> that partition's distinct gram
        #: list, produced by :meth:`prewarm_ngrams`.
        self.grams: dict[tuple[int, str], list[str]] = {}

    def ensure(self, grams: list) -> None:
        missing = [g for g in grams if g not in self.h]
        if not missing:
            return
        hash_arr, print_arr = _hash64_batch_multi(missing, (0, 0x5BF0))
        hashes = hash_arr.tolist()
        prints = (print_arr & np.uint64(0xFF)).tolist()
        for gram, hv, fpv in zip(missing, hashes, prints):
            self.h[gram] = hv
            self.fp[gram] = fpv or 1

    def prewarm_ngrams(self, partitions, schema,
                       config: SketchConfig) -> None:
        """Extract and hash every VARCHAR column's n-grams for a whole
        batch of partitions in one vectorized sweep.

        One encode + window-pack per column (all partitions
        concatenated), per-partition ``np.unique`` over packed-int
        slices, one batched hash over the union of grams. Results land
        in :attr:`grams` / :attr:`h` / :attr:`fp`;
        :func:`build_partition_sketches` consumes them and any
        partition not prewarmed (NUL-bearing values, ``n`` too large
        for packing) falls back to the per-partition path unchanged.
        """
        n = config.ngram_size
        if not 1 <= n * 21 <= 64:
            return
        from ..types import DataType

        wanted = set(config.columns) if config.columns else None
        sep = "\x00" * (n - 1)
        zero = np.uint64(0)
        all_packed: list[np.ndarray] = []
        per_key: list[tuple[tuple[int, str], np.ndarray]] = []
        for field in schema.fields:
            if field.dtype != DataType.VARCHAR:
                continue
            if wanted is not None and field.name not in wanted:
                continue
            blobs: list[str] = []
            keys: list[tuple[int, str]] = []
            for part in partitions:
                values = part.column(field.name).to_pylist()
                pending = [v for v in values if v is not None]
                if any("\x00" in v for v in pending):
                    continue  # legitimate NUL grams: per-value path
                blobs.append(sep.join(pending))
                keys.append((part.partition_id, field.name))
            if not blobs:
                continue
            mega = sep.join(blobs)
            codes = np.frombuffer(
                mega.encode("utf-32-le", "surrogatepass"),
                dtype=np.uint32).astype(np.uint64)
            count = max(0, len(codes) - n + 1)
            packed = codes[:count].copy()
            ok = codes[:count] != zero
            for j in range(1, n):
                window = codes[j:count + j]
                packed |= window << np.uint64(21 * j)
                ok &= window != zero
            offset = 0
            for blob, key in zip(blobs, keys):
                # Windows starting past len(blob)-n span into the
                # next partition's blob; they all contain a separator
                # and the ok-mask drops them, but slicing them out
                # keeps each partition's windows exact.
                span = len(blob) - n + 1
                if span <= 0:
                    per_key.append((key, packed[:0]))
                else:
                    lo = offset
                    window_slice = packed[lo:lo + span]
                    unique = np.unique(
                        window_slice[ok[lo:lo + span]])
                    per_key.append((key, unique))
                    all_packed.append(unique)
                offset += len(blob) + n - 1
        if not per_key:
            return
        # Decode + hash the union of grams once for the whole batch.
        union = np.unique(np.concatenate(all_packed)) \
            if all_packed else np.zeros(0, dtype=np.uint64)
        matrix = np.empty((len(union), n), dtype=np.uint32)
        for j in range(n):
            matrix[:, j] = ((union >> np.uint64(21 * j))
                            & np.uint64(0x1FFFFF)).astype(np.uint32)
        decoded = matrix.tobytes().decode("utf-32-le", "surrogatepass")
        gram_strs = [decoded[i:i + n]
                     for i in range(0, n * len(union), n)]
        self.ensure(gram_strs)
        for key, unique in per_key:
            indexes = np.searchsorted(union, unique)
            self.grams[key] = [gram_strs[i] for i in indexes]

    def dict_hashes(self, members: list) -> np.ndarray:
        """Seed-``_DICT_SEED`` hashes of normalized dictionary
        members, memoized across a table's partitions (low-cardinality
        columns repeat the same members everywhere).

        Keys carry the member's class: ``True == 1 == 1.0`` would
        otherwise share one dict slot despite hashing to different
        canonical byte strings.
        """
        keyed = [(m.__class__, m) for m in members]
        missing = [k for k in keyed if k not in self.dh]
        if missing:
            for key, hv in zip(
                    missing,
                    _hash64_batch([k[1] for k in missing],
                                  _DICT_SEED).tolist()):
                self.dh[key] = hv
        return np.fromiter((self.dh[k] for k in keyed),
                           dtype=np.uint64, count=len(keyed))


def _peel_small(flt: XorFilter,
                cache: SketchBuildCache | None) -> XorFilter:
    """Stack-based peel over plain Python ints for small key sets.

    Identical hash/position/fingerprint math to the numpy path —
    seed-0 hashes come from the shared cache when available, retry
    seeds fall back to the scalar ``_hash64``.
    """
    n = len(flt.keys)
    seg = flt.segment
    for seed in range(64):
        if seed == 0 and cache is not None:
            hashes = [cache.h[k] for k in flt.keys]
        else:
            hashes = [_hash64(k, seed) for k in flt.keys]
        key_pos = [(h % seg, seg + ((h >> 21) % seg),
                    2 * seg + ((h >> 42) % seg)) for h in hashes]
        cnt = [0] * flt.size
        acc = [0] * flt.size
        for ki, (a, b, c) in enumerate(key_pos):
            cnt[a] += 1
            cnt[b] += 1
            cnt[c] += 1
            acc[a] += ki
            acc[b] += ki
            acc[c] += ki
        stack = [i for i, count in enumerate(cnt) if count == 1]
        order: list[tuple[int, int]] = []
        while stack:
            position = stack.pop()
            if cnt[position] != 1:
                continue
            ki = acc[position]
            order.append((ki, position))
            for p in key_pos[ki]:
                cnt[p] -= 1
                acc[p] -= ki
                if cnt[p] == 1:
                    stack.append(p)
        if len(order) != n:
            continue  # rare peel failure; retry with the next seed
        flt.seed = seed
        if seed == 0 and cache is not None:
            fp = [cache.fp[k] for k in flt.keys]
        else:
            fp = [(_hash64(k, seed ^ 0x5BF0) & 0xFF) or 1
                  for k in flt.keys]
        table = [0] * flt.size
        for ki, position in reversed(order):
            a, b, c = key_pos[ki]
            table[position] = (fp[ki] ^ table[a] ^ table[b]
                               ^ table[c] ^ table[position]) & 0xFF
        flt.table = np.asarray(table, dtype=np.uint8)
        return flt
    return XorFilter(flt.keys)  # pragma: no cover - scalar fallback


def _build_xor_filter(keys: list,
                      cache: SketchBuildCache | None = None
                      ) -> XorFilter:
    """Construct an :class:`XorFilter` with batch hashing and linear
    count/sum hypergraph peeling.

    The result probes exactly like ``XorFilter(keys)`` — same
    size/segment math, per-seed positions, and fingerprints, so every
    key satisfies the same three-way xor equation and scalar probes
    and the vectorized lanes agree. (Table *bytes* may differ from the
    scalar builder's: a different peel order picks a different — but
    equally valid — solution of the same equations.)
    """
    if not keys:
        return XorFilter(())
    flt = XorFilter.__new__(XorFilter)
    flt.keys = list(keys)
    flt.size = max(32, int(1.23 * len(flt.keys)) + 32)
    flt.segment = flt.size // 3
    flt.size = flt.segment * 3
    flt.table = np.zeros(flt.size, dtype=np.uint8)
    n = len(flt.keys)
    seg = np.uint64(flt.segment)
    if cache is not None:
        cache.ensure(flt.keys)
    if n <= 512:
        # Small filters are dominated by fixed numpy call overhead;
        # a plain-int peel with memoized hashes is ~2x faster there.
        return _peel_small(flt, cache)
    for seed in range(64):
        if seed == 0 and cache is not None:
            h = np.fromiter((cache.h[k] for k in flt.keys),
                            dtype=np.uint64, count=n)
        else:
            h = _hash64_batch(flt.keys, seed)
        pos = np.empty((n, 3), dtype=np.int64)
        pos[:, 0] = (h % seg).astype(np.int64)
        pos[:, 1] = flt.segment \
            + ((h >> np.uint64(21)) % seg).astype(np.int64)
        pos[:, 2] = 2 * flt.segment \
            + ((h >> np.uint64(42)) % seg).astype(np.int64)
        flat = pos.ravel()
        # Sum of key indices per position: once a position's count
        # drops to 1, the sum IS the remaining key's index.
        cnt = np.bincount(flat, minlength=flt.size)
        # bincount-with-weights is a much faster scatter-add than
        # np.add.at; key indices stay exact in float64 (n << 2**53).
        acc = np.bincount(
            flat, weights=np.repeat(np.arange(n, dtype=np.float64), 3),
            minlength=flt.size).astype(np.int64)
        # Round-based peeling: resolve every singleton position of a
        # round at once. Two same-round keys can never occupy each
        # other's singleton position (its count is exactly 1), so the
        # per-round resolution order is irrelevant and both the peel
        # and the later assignment stay fully vectorized.
        rounds: list[tuple[np.ndarray, np.ndarray]] = []
        peeled = 0
        while peeled < n:
            singles = np.flatnonzero(cnt == 1)
            if len(singles) == 0:
                break
            # One assignment slot per key, deduped by scatter (a key
            # with two singleton positions may take either one; the
            # loser's count drops to 0 with the subtraction below).
            slot = np.full(n, -1, dtype=np.int64)
            slot[acc[singles]] = singles
            keys_u = np.flatnonzero(slot != -1)
            pos_u = slot[keys_u]
            rounds.append((keys_u, pos_u))
            peeled += len(keys_u)
            gone = pos[keys_u].ravel()
            cnt -= np.bincount(gone, minlength=flt.size)
            acc -= np.bincount(
                gone,
                weights=np.repeat(keys_u.astype(np.float64), 3),
                minlength=flt.size).astype(np.int64)
        if peeled != n:
            continue  # rare peel failure; retry with the next seed
        flt.seed = seed
        if seed == 0 and cache is not None:
            fp = np.fromiter((cache.fp[k] for k in flt.keys),
                             dtype=np.uint8, count=n)
        else:
            fp = (_hash64_batch(flt.keys, seed ^ 0x5BF0)
                  & np.uint64(0xFF)).astype(np.uint8)
            fp[fp == 0] = 1
        table = np.zeros(flt.size, dtype=np.uint8)
        for keys_u, pos_u in reversed(rounds):
            kp = pos[keys_u]
            table[pos_u] = (fp[keys_u] ^ table[kp[:, 0]]
                            ^ table[kp[:, 1]] ^ table[kp[:, 2]]
                            ^ table[pos_u])
        flt.table = table
        return flt
    return XorFilter(keys)  # pragma: no cover - scalar fallback


class NGramSketch:
    """Membership filter over a column's n-grams.

    A row matching ``CONTAINS(s, needle)``, ``ENDSWITH(s, needle)``,
    or a substring-``LIKE`` contains every n-gram of the needle's
    literal runs, so any run gram that is provably absent from the
    partition proves the predicate can never be TRUE there (NULL rows
    evaluate to NULL, which WHERE also excludes).
    """

    __slots__ = ("n", "kind", "filter")

    def __init__(self, n: int, kind: str,
                 membership_filter: XorFilter | CuckooFilter):
        self.n = n
        self.kind = kind
        self.filter = membership_filter

    @classmethod
    def build(cls, values: Iterable[str | None], config: SketchConfig,
              cache: SketchBuildCache | None = None,
              precomputed: list[str] | None = None
              ) -> "NGramSketch | None":
        n = config.ngram_size
        limit = config.max_ngrams
        if precomputed is not None:
            # Gram list produced by SketchBuildCache.prewarm_ngrams
            # over this exact partition's values.
            if len(precomputed) > limit:
                return None  # too distinct to bound; fail open
            if config.filter_kind == "cuckoo":
                cuckoo = CuckooFilter(max(1, len(precomputed)))
                if not cuckoo.add_all(precomputed):
                    return None
                return cls(n, config.filter_kind, cuckoo)
            return cls(n, config.filter_kind,
                       _build_xor_filter(sorted(precomputed), cache))
        grams: set[str] = set()
        # Bulk path: join the values with an n-1 NUL separator and
        # slice once — a length-n window can never span two values
        # without containing a separator char. Values that themselves
        # contain NUL take the per-value path so their legitimate
        # NUL-bearing grams are not filtered out.
        pending: list[str] = []
        for value in values:
            if value is None:
                continue
            if "\x00" in value:
                grams |= ngrams_of(value, n)
            else:
                pending.append(value)
        if pending:
            blob = ("\x00" * (n - 1)).join(pending)
            if len(blob) >= n:
                if 1 <= n * 21 <= 64:
                    grams.update(_unique_ngrams_packed(blob, n))
                else:
                    raw = {blob[i:i + n]
                           for i in range(len(blob) - n + 1)}
                    grams.update(g for g in raw if "\x00" not in g)
        if len(grams) > limit:
            return None  # too distinct to bound; fail open
        if config.filter_kind == "cuckoo":
            membership: XorFilter | CuckooFilter = CuckooFilter(
                max(1, len(grams)))
            if not membership.add_all(grams):
                return None  # overfull filter would lose soundness
        else:
            membership = _build_xor_filter(sorted(grams), cache)
        return cls(config.ngram_size, config.filter_kind, membership)

    def might_match_runs(self, runs: Iterable[str]) -> bool:
        """Could a value containing every literal run exist here?"""
        for run in runs:
            for gram in ngrams_of(run, self.n):
                if not self.filter.might_contain(gram):
                    return False
        return True

    def nbytes(self) -> int:
        return self.filter.nbytes()


class DictionarySketch:
    """Sorted 64-bit value hashes of a low-cardinality column.

    Membership is decided purely in hash space — the vectorized lane
    probes the same hashes — so a collision is a sound false positive
    and the scalar/vectorized verdicts are identical by construction.
    """

    __slots__ = ("hashes",)

    def __init__(self, hashes: np.ndarray):
        self.hashes = hashes  # sorted uint64

    @classmethod
    def build(cls, values: Iterable[Any], dtype: DataType,
              config: SketchConfig,
              cache: SketchBuildCache | None = None
              ) -> "DictionarySketch | None":
        raw = set(values)  # dedup at C speed before normalizing
        raw.discard(None)
        limit = config.dictionary_max_entries
        if dtype == DataType.VARCHAR and len(raw) > limit:
            # Normalization is the identity on str, so it can never
            # merge VARCHAR values under the limit — bail before
            # normalizing thousands of distinct strings.
            return None
        if (dtype == DataType.DOUBLE and len(raw) > limit + 1
                and all(type(v) is float for v in raw)):
            # Distinct floats only ever merge -0.0 into 0.0, so the
            # normalized count is at least len(raw) - 1.
            return None
        distinct: set[Any] = set()
        for value in raw:
            normalized = normalize_member(value, dtype)
            if normalized is None or normalized is _IMPOSSIBLE:
                return None  # un-normalizable stored value; fail open
            distinct.add(normalized)
            if len(distinct) > limit:
                return None
        members = list(distinct)
        if cache is not None:
            hashes = np.sort(cache.dict_hashes(members))
        else:
            hashes = np.sort(_hash64_batch(members, _DICT_SEED))
        return cls(hashes)

    def might_contain(self, normalized: Any) -> bool:
        target = np.uint64(_hash64(normalized, _DICT_SEED))
        i = int(np.searchsorted(self.hashes, target))
        return i < len(self.hashes) and self.hashes[i] == target

    def nbytes(self) -> int:
        return int(self.hashes.nbytes)


class HistogramSketch:
    """Equi-width bucket occupancy over a numeric column.

    ``lo``/``width`` and the bucket formula are float64 end to end;
    the vectorized lane repeats the identical IEEE operations, so a
    value present at build time always probes back into its bucket.
    """

    __slots__ = ("lo", "hi", "width", "counts")

    def __init__(self, lo: float, hi: float, width: float,
                 counts: np.ndarray):
        self.lo = lo
        self.hi = hi
        self.width = width
        self.counts = counts  # int64 occupancy per bucket

    @classmethod
    def build(cls, values: Iterable[Any],
              config: SketchConfig) -> "HistogramSketch | None":
        present = [float(v) for v in values if v is not None]
        if not present:
            return cls(0.0, 0.0, 0.0, np.zeros(1, dtype=np.int64))
        arr = np.asarray(present, dtype=np.float64)
        if not np.isfinite(arr).all():
            return None  # NaN/inf break bucket math; fail open
        lo = float(arr.min())
        hi = float(arr.max())
        buckets = max(1, config.histogram_buckets)
        width = (hi - lo) / buckets
        counts = np.zeros(buckets, dtype=np.int64)
        if width > 0.0:
            idx = ((arr - lo) / width).astype(np.int64)
            np.clip(idx, 0, buckets - 1, out=idx)
        else:
            idx = np.zeros(len(arr), dtype=np.int64)
        np.add.at(counts, idx, 1)
        return cls(lo, hi, width, counts)

    def might_contain(self, value: float) -> bool:
        if not self.counts.any():
            return False  # all-NULL column: equality is never TRUE
        if value < self.lo or value > self.hi:
            return False
        if self.width > 0.0:
            index = int((value - self.lo) / self.width)
            index = min(max(index, 0), len(self.counts) - 1)
        else:
            index = 0
        return bool(self.counts[index])

    def nbytes(self) -> int:
        return 24 + int(self.counts.nbytes)


@dataclass
class PartitionSketches:
    """All secondary sketches of one micro-partition."""

    ngram: dict[str, NGramSketch] = field(default_factory=dict)
    dictionary: dict[str, DictionarySketch] = field(default_factory=dict)
    histogram: dict[str, HistogramSketch] = field(default_factory=dict)
    #: wall-clock milliseconds spent building (overhead accounting)
    build_ms: float = 0.0

    def is_empty(self) -> bool:
        return not (self.ngram or self.dictionary or self.histogram)

    def nbytes(self) -> int:
        return (sum(s.nbytes() for s in self.ngram.values())
                + sum(s.nbytes() for s in self.dictionary.values())
                + sum(s.nbytes() for s in self.histogram.values()))

    def might_match(self, probe: "SketchProbe") -> bool:
        """Scalar verdict for one compiled probe (the oracle the
        vectorized lanes must agree with)."""
        if probe.kind == "ngram":
            sketch = self.ngram.get(probe.column)
            if sketch is None:
                return True
            return sketch.might_match_runs(probe.runs)
        dictionary = self.dictionary.get(probe.column)
        histogram = self.histogram.get(probe.column)
        if dictionary is None and histogram is None:
            return True
        for member in probe.members:
            possible = True
            if dictionary is not None:
                possible = dictionary.might_contain(member)
            if possible and histogram is not None \
                    and isinstance(member, (int, float)) \
                    and not isinstance(member, bool):
                possible = histogram.might_contain(float(member))
            if possible:
                return True
        return False


def normalize_member(value: Any, dtype: DataType) -> Any:
    """Canonical equality-probe representation of ``value`` for a
    column of ``dtype``.

    Both the dictionary build side and the probe side run through
    this, so representation quirks (``3`` vs ``3.0``, ``-0.0`` vs
    ``0.0``) can never produce an unsound hash mismatch. Returns
    ``None`` when no sound canonical form exists (the probe must
    answer "maybe") and :data:`_IMPOSSIBLE` when the literal provably
    equals no column value (e.g. ``x = 2.5`` on an INTEGER column).
    """
    if dtype == DataType.VARCHAR:
        return value if isinstance(value, str) else None
    if dtype == DataType.BOOLEAN:
        return value if isinstance(value, bool) else None
    if isinstance(value, bool):
        return None  # True == 1 comparisons stay out of hash space
    if dtype == DataType.INTEGER:
        if isinstance(value, (int, np.integer)):
            return int(value)
        if isinstance(value, (float, np.floating)):
            return int(value) if float(value).is_integer() \
                else _IMPOSSIBLE
        return None
    if dtype == DataType.DOUBLE:
        if isinstance(value, (int, float, np.integer, np.floating)):
            normalized = float(value)
            return 0.0 if normalized == 0 else normalized
        return None
    if dtype == DataType.DATE:
        if isinstance(value, datetime.date) \
                and not isinstance(value, datetime.datetime):
            return value
        return None
    return None


def build_partition_sketches(partition: "MicroPartition",
                             config: SketchConfig,
                             cache: SketchBuildCache | None = None
                             ) -> PartitionSketches:
    """Build every configured sketch for one micro-partition.

    Pass one :class:`SketchBuildCache` across a batch of partitions
    (table creation, recluster, ``enable_sketches``) to hash each
    distinct n-gram only once for the whole batch.
    """
    started = time.perf_counter()
    sketches = PartitionSketches()
    wanted = (None if config.columns is None
              else {c.lower() for c in config.columns})
    for column_field in partition.schema:
        name = column_field.name
        if wanted is not None and name not in wanted:
            continue
        values = partition.column(name).to_pylist()
        if column_field.dtype == DataType.VARCHAR:
            precomputed = None if cache is None else cache.grams.pop(
                (partition.partition_id, name), None)
            ngram = NGramSketch.build(values, config, cache,
                                      precomputed)
            if ngram is not None:
                sketches.ngram[name] = ngram
        dictionary = DictionarySketch.build(values, column_field.dtype,
                                            config, cache)
        if dictionary is not None:
            sketches.dictionary[name] = dictionary
        if column_field.dtype.is_numeric:
            histogram = HistogramSketch.build(values, config)
            if histogram is not None:
                sketches.histogram[name] = histogram
    sketches.build_ms = (time.perf_counter() - started) * 1000.0
    return sketches


# ---------------------------------------------------------------------------
# Predicate compilation
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SketchProbe:
    """One sketch question compiled from a top-level conjunct.

    ``ngram`` probes require every gram of every literal run to be
    possibly present; ``member`` probes require at least one candidate
    literal to be possibly present. A failing probe proves the
    conjunct can never be TRUE in the partition, and WHERE discards
    FALSE and NULL rows alike, so the partition prunes.
    """

    kind: str                   #: "ngram" or "member"
    column: str
    runs: tuple[str, ...] = ()
    members: tuple = ()


def _conjuncts(predicate: ast.Expr) -> list[ast.Expr]:
    """Flatten top-level AND nesting into a conjunct list."""
    if isinstance(predicate, ast.And):
        out: list[ast.Expr] = []
        for child in predicate.children():
            out.extend(_conjuncts(child))
        return out
    return [predicate]


def _like_runs(pattern: str) -> tuple[str, ...]:
    """Maximal literal runs of a LIKE pattern (wildcards split runs).

    Any string matching the pattern contains each run as a substring,
    so the runs are sound n-gram requirements. Mirrors
    ``repro.expr.eval``'s LIKE semantics, which treat every ``%`` and
    ``_`` as a wildcard (no escape syntax).
    """
    return tuple(run for run in re.split(r"[%_]", pattern) if run)


def _equality_parts(conjunct: ast.Expr
                    ) -> tuple[ast.ColumnRef, tuple] | None:
    """``(column, literal values)`` for ``col = lit`` / ``col IN``."""
    if isinstance(conjunct, ast.Compare) and conjunct.op in ("=", "=="):
        left, right = conjunct.left, conjunct.right
        if isinstance(left, ast.Literal):
            left, right = right, left
        if isinstance(left, ast.ColumnRef) \
                and isinstance(right, ast.Literal):
            return left, (right.value,)
        return None
    if isinstance(conjunct, ast.InList) \
            and isinstance(conjunct.child, ast.ColumnRef):
        return conjunct.child, tuple(conjunct.values)
    return None


def compile_sketch_probes(predicate: ast.Expr, schema: Schema,
                          ngram_size: int = 3) -> list[SketchProbe]:
    """Compile a predicate's top-level conjuncts into sketch probes.

    Only bare-column conjuncts are probed; anything inside OR / NOT
    or over computed expressions is left to the other techniques.
    """
    probes: list[SketchProbe] = []
    for conjunct in _conjuncts(predicate):
        runs: tuple[str, ...] = ()
        if isinstance(conjunct, (ast.Contains, ast.EndsWith,
                                 ast.StartsWith)) \
                and isinstance(conjunct.child, ast.ColumnRef):
            runs = (conjunct.needle,)
            column = conjunct.child.name
        elif isinstance(conjunct, ast.Like) \
                and isinstance(conjunct.child, ast.ColumnRef):
            runs = _like_runs(conjunct.pattern)
            column = conjunct.child.name
            if conjunct.is_exact:
                member = _normalized_members(
                    (conjunct.pattern,), column, schema)
                if member:
                    probes.append(SketchProbe("member", column,
                                              members=member))
        else:
            equality = _equality_parts(conjunct)
            if equality is not None:
                column_ref, values = equality
                members = _normalized_members(values, column_ref.name,
                                              schema)
                if members:
                    probes.append(SketchProbe(
                        "member", column_ref.name, members=members))
            continue
        if any(len(run) >= ngram_size for run in runs):
            probes.append(SketchProbe(
                "ngram", column,
                runs=tuple(run for run in runs
                           if len(run) >= ngram_size)))
    return probes


def _normalized_members(values: Iterable[Any], column: str,
                        schema: Schema) -> tuple:
    """Normalize equality candidates; () when the probe is unusable."""
    try:
        dtype = schema.dtype_of(column)
    except Exception:  # noqa: BLE001 - unknown column: no probe
        return ()
    members = []
    for value in values:
        if value is None:
            continue  # col = NULL is never TRUE
        normalized = normalize_member(value, dtype)
        if normalized is None:
            return ()  # one un-normalizable candidate poisons the probe
        if normalized is _IMPOSSIBLE:
            continue  # provably equal to nothing; drop the candidate
        members.append(normalized)
    return tuple(members)


def is_sketch_prunable(predicate: ast.Expr, schema: Schema,
                       ngram_size: int = 3) -> bool:
    """Whether secondary sketches could in principle prune this
    predicate (the eligibility flag, independent of sketch presence)."""
    return bool(compile_sketch_probes(predicate, schema, ngram_size))


# ---------------------------------------------------------------------------
# Vectorized lanes (SoA mirror of the scalar sketches)
# ---------------------------------------------------------------------------
class _NGramLane:
    """Per-column SoA packing of xor-filter n-gram sketches.

    Each partition's filter table is concatenated into one uint8 array
    with per-partition seed/segment/offset lanes; a probe computes the
    scalar hash once per (gram, seed) and gathers all three xor
    positions across partitions in numpy. Cuckoo-backed or
    differently-sized sketches are left uncovered — the pruner falls
    back to the scalar probe for those rows, so verdicts never differ.
    """

    def __init__(self, items: list[tuple[int, PartitionSketches]],
                 column: str, ngram_size: int):
        n = len(items)
        self.ngram_size = ngram_size
        self.has = np.zeros(n, dtype=bool)
        self.covered = np.ones(n, dtype=bool)
        self.seeds = np.zeros(n, dtype=np.uint64)
        self.segments = np.ones(n, dtype=np.uint64)
        self.offsets = np.zeros(n, dtype=np.uint64)
        tables: list[np.ndarray] = []
        offset = 0
        for i, (_, sketches) in enumerate(items):
            sketch = sketches.ngram.get(column)
            if sketch is None:
                continue
            if sketch.n != ngram_size \
                    or not isinstance(sketch.filter, XorFilter):
                self.covered[i] = False
                continue
            self.has[i] = True
            self.seeds[i] = sketch.filter.seed
            self.segments[i] = sketch.filter.segment
            self.offsets[i] = offset
            tables.append(sketch.filter.table)
            offset += sketch.filter.size
        self.tables = (np.concatenate(tables) if tables
                       else np.zeros(0, dtype=np.uint8))

    def probe(self, runs: Iterable[str]) -> np.ndarray:
        """Per-partition "could match": sketchless rows stay True."""
        ok = np.ones(len(self.has), dtype=bool)
        grams: set[str] = set()
        for run in runs:
            grams |= ngrams_of(run, self.ngram_size)
        if not grams or not self.has.any():
            return ok
        no_sketch = ~self.has
        for gram in sorted(grams):
            present = np.zeros(len(self.has), dtype=bool)
            for seed in np.unique(self.seeds[self.has]):
                mask = self.has & (self.seeds == seed)
                seed_int = int(seed)
                h = _hash64(gram, seed_int)
                fingerprint = (_hash64(gram, seed_int ^ 0x5BF0)
                               & 0xFF) or 1
                segment = self.segments[mask]
                base = self.offsets[mask]
                p0 = base + np.uint64(h) % segment
                p1 = base + segment + np.uint64(h >> 21) % segment
                p2 = (base + np.uint64(2) * segment
                      + np.uint64(h >> 42) % segment)
                combined = (self.tables[p0] ^ self.tables[p1]
                            ^ self.tables[p2])
                present[mask] = combined == fingerprint
            ok &= present | no_sketch
            if not (ok | no_sketch).any():
                break
        return ok


class _MemberLane:
    """Per-column SoA packing of dictionary + histogram sketches."""

    def __init__(self, items: list[tuple[int, PartitionSketches]],
                 column: str):
        n = len(items)
        self.covered = np.ones(n, dtype=bool)
        self.has_dict = np.zeros(n, dtype=bool)
        self.has_hist = np.zeros(n, dtype=bool)
        sizes = np.zeros(n, dtype=np.int64)
        dictionaries: list[np.ndarray | None] = [None] * n
        self.lo = np.zeros(n, dtype=np.float64)
        self.hi = np.zeros(n, dtype=np.float64)
        self.width = np.zeros(n, dtype=np.float64)
        self.nbuckets = np.ones(n, dtype=np.int64)
        histograms: list[np.ndarray | None] = [None] * n
        for i, (_, sketches) in enumerate(items):
            dictionary = sketches.dictionary.get(column)
            if dictionary is not None:
                self.has_dict[i] = True
                sizes[i] = len(dictionary.hashes)
                dictionaries[i] = dictionary.hashes
            histogram = sketches.histogram.get(column)
            if histogram is not None:
                self.has_hist[i] = True
                self.lo[i] = histogram.lo
                self.hi[i] = histogram.hi
                self.width[i] = histogram.width
                self.nbuckets[i] = len(histogram.counts)
                histograms[i] = histogram.counts
        self.sizes = sizes
        width_k = max(1, int(sizes.max()) if n else 1)
        self.hashes = np.zeros((n, width_k), dtype=np.uint64)
        for i, hashes in enumerate(dictionaries):
            if hashes is not None and len(hashes):
                self.hashes[i, :len(hashes)] = hashes
        self.valid = (np.arange(width_k)[None, :]
                      < sizes[:, None])
        buckets_k = max(1, int(self.nbuckets.max()) if n else 1)
        self.counts = np.zeros((n, buckets_k), dtype=np.int64)
        for i, counts in enumerate(histograms):
            if counts is not None:
                self.counts[i, :len(counts)] = counts
        self.hist_empty = ~self.counts.any(axis=1)
        self._width_safe = np.where(self.width > 0.0, self.width, 1.0)

    def probe(self, members: Iterable[Any]) -> np.ndarray:
        """Per-partition "some candidate possibly present"."""
        n = len(self.covered)
        any_ok = np.zeros(n, dtype=bool)
        for member in members:
            possible = np.ones(n, dtype=bool)
            if self.has_dict.any():
                target = np.uint64(_hash64(member, _DICT_SEED))
                in_dict = ((self.hashes == target)
                           & self.valid).any(axis=1)
                possible &= in_dict | ~self.has_dict
            if self.has_hist.any() \
                    and isinstance(member, (int, float)) \
                    and not isinstance(member, bool):
                value = float(member)
                in_range = ((value >= self.lo) & (value <= self.hi)
                            & ~self.hist_empty)
                with np.errstate(invalid="ignore"):
                    offset = (value - self.lo) / self._width_safe
                # NaN members and no-histogram rows produce non-finite
                # or absurdly large offsets; they are masked out by
                # in_range/has_hist below, so clamp in float space
                # first to keep the int64 cast warning-free.
                offset = np.nan_to_num(offset, nan=0.0, posinf=0.0,
                                       neginf=0.0)
                index = np.clip(
                    offset, 0.0,
                    self.nbuckets.astype(np.float64)).astype(np.int64)
                index = np.where(self.width > 0.0, index, 0)
                np.clip(index, 0, self.nbuckets - 1, out=index)
                occupied = self.counts[np.arange(n), index] > 0
                possible &= (in_range & occupied) | ~self.has_hist
            any_ok |= possible
            if any_ok.all():
                break
        return any_ok


class SketchIndex:
    """SoA sketch lanes for one table's partitions.

    The vectorized counterpart of a ``{partition_id:
    PartitionSketches}`` mapping, built the same way
    :class:`~repro.pruning.stats_index.StatsIndex` mirrors zone maps.
    Rows a lane cannot cover (e.g. cuckoo-backed filters) keep
    ``covered=False`` so the pruner routes them to the scalar probe —
    vectorized and scalar verdicts are identical by construction.
    """

    def __init__(self, entries: Iterable[tuple[int, PartitionSketches]],
                 ngram_size: int = 3):
        self._items = [(pid, sketches) for pid, sketches in entries
                       if sketches is not None]
        self.row_of = {pid: i
                       for i, (pid, _) in enumerate(self._items)}
        self.ngram_size = ngram_size
        self._ngram_lanes: dict[str, _NGramLane] = {}
        self._member_lanes: dict[str, _MemberLane] = {}

    def __len__(self) -> int:
        return len(self._items)

    def _ngram_lane(self, column: str) -> _NGramLane | None:
        lane = self._ngram_lanes.get(column)
        if lane is None:
            if not any(column in sketches.ngram
                       for _, sketches in self._items):
                return None
            lane = _NGramLane(self._items, column, self.ngram_size)
            self._ngram_lanes[column] = lane
        return lane

    def _member_lane(self, column: str) -> _MemberLane | None:
        lane = self._member_lanes.get(column)
        if lane is None:
            if not any(column in sketches.dictionary
                       or column in sketches.histogram
                       for _, sketches in self._items):
                return None
            lane = _MemberLane(self._items, column)
            self._member_lanes[column] = lane
        return lane

    def evaluate(self, probe: SketchProbe
                 ) -> tuple[np.ndarray, np.ndarray] | None:
        """``(verdicts, covered)`` over this index's rows, or None
        when no partition has a sketch for the probe's column."""
        if not self._items:
            return None
        if probe.kind == "ngram":
            lane = self._ngram_lane(probe.column)
            if lane is None:
                return None
            return lane.probe(probe.runs), lane.covered
        lane = self._member_lane(probe.column)
        if lane is None:
            return None
        return lane.probe(probe.members), lane.covered


# ---------------------------------------------------------------------------
# The pruner
# ---------------------------------------------------------------------------
class SketchPruner:
    """Prunes a scan set with secondary sketches (never ALWAYS).

    Missing sketches, degraded partitions, and uncompilable conjuncts
    all answer "maybe" — the partition is scanned. When a
    :class:`SketchIndex` is supplied, covered rows classify through
    the vectorized lanes and the rest through the scalar probes; the
    two paths share every hash and bucket formula, so the verdicts are
    bit-identical.
    """

    def __init__(self, predicate: ast.Expr, schema: Schema,
                 sketches: Mapping[int, PartitionSketches],
                 index: SketchIndex | None = None,
                 ngram_size: int = 3):
        self.probes = compile_sketch_probes(predicate, schema,
                                            ngram_size)
        self.sketches = sketches
        self.index = index
        self.checks = 0
        #: pruned-partition attribution by probe kind
        self.pruned_by_kind: dict[str, int] = {}
        self._vector: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        if index is not None and sketches:
            for position, probe in enumerate(self.probes):
                result = index.evaluate(probe)
                if result is not None:
                    self._vector[position] = result

    @property
    def eligible(self) -> bool:
        return bool(self.probes)

    def _might_match(self, position: int, probe: SketchProbe,
                     partition_id: int) -> bool:
        vector = self._vector.get(position)
        if vector is not None:
            row = self.index.row_of.get(partition_id)
            if row is not None and vector[1][row]:
                return bool(vector[0][row])
        sketches = self.sketches.get(partition_id)
        if sketches is None:
            return True
        return sketches.might_match(probe)

    def classify(self, partition_id: int) -> str | None:
        """The kind of the first failing probe, or None (keep)."""
        for position, probe in enumerate(self.probes):
            self.checks += 1
            if not self._might_match(position, probe, partition_id):
                return probe.kind
        return None

    def prune(self, scan_set: ScanSet) -> PruningResult:
        kept: list[tuple[int, Any]] = []
        pruned_ids: list[int] = []
        if self.probes and self.sketches:
            for partition_id, zone_map in scan_set:
                if partition_id in scan_set.degraded_ids:
                    kept.append((partition_id, zone_map))
                    continue  # degraded metadata: always fail open
                failed = self.classify(partition_id)
                if failed is None:
                    kept.append((partition_id, zone_map))
                else:
                    pruned_ids.append(partition_id)
                    self.pruned_by_kind[failed] = (
                        self.pruned_by_kind.get(failed, 0) + 1)
        else:
            kept = list(scan_set)
        return PruningResult(
            technique=PruneCategory.SKETCH,
            before=len(scan_set),
            kept=scan_set.with_entries(kept),
            pruned_ids=pruned_ids,
            checks=self.checks,
        )


# ---------------------------------------------------------------------------
# Per-query-shape skip sets
# ---------------------------------------------------------------------------
@dataclass
class _SkipEntry:
    table: str
    version: int
    empty_ids: frozenset[int]
    hits: int = 0


class ShapeSkipSet:
    """Provenance-style skip sets for recurring query shapes.

    A complete execution proves exactly which partitions produced no
    matching rows for its predicate; a repeat of the same shape (same
    table + predicate text) can skip them outright. Entries are valid
    only while the table's version counter is unchanged — any DML or
    recluster bumps the version and the stale entry is dropped at the
    next lookup, so no DML-notification plumbing is needed (this is
    the complement of :class:`~repro.pruning.PredicateCache`, which
    stores the *matching* set and patches it on every DML).
    """

    def __init__(self, max_entries: int = 512,
                 max_partitions_per_entry: int = 4096):
        self.max_entries = max_entries
        self.max_partitions_per_entry = max_partitions_per_entry
        self._entries: "OrderedDict[tuple, _SkipEntry]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.records = 0

    @staticmethod
    def _key(table: str, predicate: ast.Expr) -> tuple:
        return (table.lower(), "skip", predicate.to_sql())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def lookup(self, table: str, predicate: ast.Expr,
               version: int) -> frozenset[int] | None:
        """Partitions proven empty for this shape, or None."""
        key = self._key(table, predicate)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            if entry.version != version:
                del self._entries[key]
                self.invalidations += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            entry.hits += 1
            self.hits += 1
            return entry.empty_ids

    def record(self, table: str, predicate: ast.Expr, version: int,
               empty_ids: Iterable[int]) -> bool:
        """Remember the observed-empty partitions of one execution."""
        empty = frozenset(empty_ids)
        if not empty or len(empty) > self.max_partitions_per_entry:
            return False
        key = self._key(table, predicate)
        with self._lock:
            self._entries.pop(key, None)
            self._entries[key] = _SkipEntry(table.lower(), version,
                                            empty)
            self.records += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        return True

    def drop_table(self, table: str) -> None:
        table = table.lower()
        with self._lock:
            for key in [k for k, entry in self._entries.items()
                        if entry.table == table]:
                del self._entries[key]

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "records": self.records,
            }
