"""Filter pruning: min/max pruning for query predicates (§3).

"Using the query's predicates, the query engine attempts to deduce
whether a micro-partition might contain relevant data based on the
partition's metadata." Partitions proven empty of matches are removed
from the scan set; as a byproduct, partitions proven *fully-matching*
(every row qualifies, §4.1) are recorded for LIMIT and top-k pruning.
"""

from __future__ import annotations

from ..expr import ast
from ..expr.pruning import TriState, prune_partition
from ..expr.rewrite import widen_for_pruning
from ..storage.zonemap import ZoneMap
from ..types import Schema
from .base import PruneCategory, PruningResult, ScanSet

#: Leaf node types that can in principle interact with min/max metadata.
_PRUNABLE_LEAVES = (ast.Compare, ast.Like, ast.StartsWith, ast.InList,
                    ast.IsNull)


def is_prunable(predicate: ast.Expr) -> bool:
    """Whether a predicate has any chance of pruning with min/max stats.

    Used by workload analyses to separate "no pruning possible" from
    "pruning possible but ineffective" (Figure 4 discussion).
    """
    for node in predicate.walk():
        if isinstance(node, _PRUNABLE_LEAVES) and node.column_refs():
            return True
    return False


class FilterPruner:
    """Prunes a scan set against one predicate.

    The predicate is widened once (imprecise filter rewrite, §3.1) for
    the not-matching test; the *original* predicate decides
    fully-matching status, because widening weakens a predicate and a
    weakened ALWAYS proves nothing about the original.
    """

    def __init__(self, predicate: ast.Expr, schema: Schema,
                 detect_fully_matching: bool = True):
        self.predicate = predicate
        self.schema = schema
        self.widened = widen_for_pruning(predicate)
        self.detect_fully_matching = detect_fully_matching
        self.checks = 0

    def classify(self, zone_map: ZoneMap) -> TriState:
        """Classify one partition: NEVER / MAYBE / ALWAYS."""
        self.checks += 1
        verdict = prune_partition(self.widened, zone_map, self.schema)
        if verdict == TriState.NEVER:
            return TriState.NEVER
        if not self.detect_fully_matching:
            return TriState.MAYBE
        if self.widened == self.predicate:
            # No widening happened; the first verdict is authoritative.
            return verdict
        self.checks += 1
        if prune_partition(self.predicate, zone_map,
                           self.schema) == TriState.ALWAYS:
            return TriState.ALWAYS
        return TriState.MAYBE

    def prune(self, scan_set: ScanSet) -> PruningResult:
        """Apply filter pruning to a whole scan set."""
        kept: list[tuple[int, ZoneMap]] = []
        pruned_ids: list[int] = []
        fully_matching: list[int] = []
        for partition_id, zone_map in scan_set:
            verdict = self.classify(zone_map)
            if verdict == TriState.NEVER:
                pruned_ids.append(partition_id)
                continue
            kept.append((partition_id, zone_map))
            if verdict == TriState.ALWAYS:
                fully_matching.append(partition_id)
        return PruningResult(
            technique=PruneCategory.FILTER,
            before=len(scan_set),
            kept=scan_set.with_entries(kept),
            pruned_ids=pruned_ids,
            fully_matching_ids=fully_matching,
            checks=self.checks,
        )
