"""The combined pruning flow (§7, Figure 11).

Snowflake applies pruning techniques in a fixed order — filter → join →
LIMIT → top-k — each operating on the previous technique's output.
:class:`FlowRecord` captures one query's journey through that flow;
:class:`PruningFlow` aggregates records across a workload into the
statistics the paper reports: per-technique pruning-ratio distributions
(Figure 1), technique-combination shares (Figure 11), and the
platform-wide fraction of micro-partitions pruned (the 99.4% headline).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from .base import PruneCategory, PruningResult

#: The order in which Snowflake applies the techniques (§5.5, §7);
#: secondary-sketch pruning runs right after filter pruning, on the
#: same compile-time scan set.
TECHNIQUE_ORDER = (PruneCategory.FILTER, PruneCategory.SKETCH,
                   PruneCategory.JOIN, PruneCategory.LIMIT,
                   PruneCategory.TOPK)


@dataclass
class FlowRecord:
    """Pruning outcome of one query across all its table scans.

    ``pruned_by`` / ``entering`` count micro-partitions summed over the
    query's scans, keyed by technique. ``total_partitions`` is the
    query's initial partition count over *all* scans (including scans
    with no filters), matching the paper's query-level denominators.
    """

    query_id: str
    total_partitions: int
    pruned_by: dict[str, int] = field(default_factory=dict)
    entering: dict[str, int] = field(default_factory=dict)
    final_partitions: int = 0
    eligible: dict[str, bool] = field(default_factory=dict)

    @classmethod
    def from_results(cls, query_id: str, total_partitions: int,
                     results: Iterable[PruningResult],
                     eligible: Mapping[str, bool] | None = None,
                     final_partitions: int | None = None) -> "FlowRecord":
        pruned_by: dict[str, int] = defaultdict(int)
        entering: dict[str, int] = defaultdict(int)
        for result in results:
            pruned_by[result.technique] += result.pruned
            entering[result.technique] += result.before
        if final_partitions is None:
            final_partitions = total_partitions - sum(pruned_by.values())
        return cls(
            query_id=query_id,
            total_partitions=total_partitions,
            pruned_by=dict(pruned_by),
            entering=dict(entering),
            final_partitions=final_partitions,
            eligible=dict(eligible or {}),
        )

    def applied(self, technique: str) -> bool:
        """Whether the technique pruned at least one partition."""
        return self.pruned_by.get(technique, 0) > 0

    def combination(self) -> tuple[str, ...]:
        """The ordered set of techniques that pruned something."""
        return tuple(t for t in TECHNIQUE_ORDER if self.applied(t))

    def ratio(self, technique: str,
              relative_to_query: bool = True) -> float:
        """This technique's pruning ratio for this query.

        ``relative_to_query`` divides by the query's total partitions
        (the paper's Figure 4 convention); otherwise by the partitions
        entering the technique.
        """
        pruned = self.pruned_by.get(technique, 0)
        base = (self.total_partitions if relative_to_query
                else self.entering.get(technique, 0))
        if base == 0:
            return 0.0
        return pruned / base

    @property
    def overall_ratio(self) -> float:
        if self.total_partitions == 0:
            return 0.0
        return 1.0 - self.final_partitions / self.total_partitions


class PruningFlow:
    """Workload-level aggregation of :class:`FlowRecord` objects."""

    def __init__(self):
        self.records: list[FlowRecord] = []

    def add(self, record: FlowRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def technique_ratios(self, technique: str,
                         relative_to_query: bool = True) -> list[float]:
        """Pruning ratios of queries *eligible* for the technique.

        A query is eligible when the record marks it so, or — absent an
        explicit mark — when any partitions entered the technique.
        """
        ratios = []
        for record in self.records:
            eligible = record.eligible.get(
                technique, record.entering.get(technique, 0) > 0)
            if eligible:
                ratios.append(record.ratio(technique, relative_to_query))
        return ratios

    def combination_shares(self) -> dict[tuple[str, ...], float]:
        """Share of queries per technique combination (Figure 11)."""
        if not self.records:
            return {}
        counts = Counter(record.combination()
                         for record in self.records)
        total = len(self.records)
        return {combo: count / total
                for combo, count in counts.most_common()}

    def technique_shares(self) -> dict[str, float]:
        """Share of queries where each technique pruned something."""
        if not self.records:
            return {}
        total = len(self.records)
        return {t: sum(r.applied(t) for r in self.records) / total
                for t in TECHNIQUE_ORDER}

    def platform_pruning_ratio(self) -> float:
        """Micro-partitions pruned across the whole workload.

        The paper's headline metric: 1 - (partitions scanned /
        partitions addressed) summed over every query.
        """
        addressed = sum(r.total_partitions for r in self.records)
        scanned = sum(r.final_partitions for r in self.records)
        if addressed == 0:
            return 0.0
        return 1.0 - scanned / addressed
