"""Top-k pruning: boundary-value partition skipping at runtime (§5).

The TopK operator's heap induces a *boundary value* — the k-th best
value seen so far. Before a scan loads a micro-partition it compares
the partition's min/max for the ORDER BY column against the boundary:
for DESC ordering, a partition whose max is below the boundary cannot
contribute to the result and is skipped. The boundary tightens as the
scan progresses (a runtime, data-dependent technique in the spirit of
the IR community's block-max WAND).

NULL ordering: this engine sorts NULLs *last* regardless of direction,
so NULL order keys are the worst possible rank and never block pruning.

This module also implements the partition processing-order strategies
of §5.3 and the upfront boundary initialization of §5.4.
"""

from __future__ import annotations

import enum
from typing import Any, Iterable

from ..storage.zonemap import ZoneMap
from .base import ScanSet

#: Rank tuples order as (has_value, value); NULLs rank below everything
#: for DESC and above nothing for ASC because we always sort NULLS LAST.
_NULL_RANK = (0, 0)


def rank_of(value: Any, desc: bool) -> tuple:
    """Total-order rank of one ORDER BY key; higher rank = better.

    For DESC queries larger values are better; for ASC smaller values
    are better, which we encode by negating numeric values and using a
    wrapper for strings.
    """
    if value is None:
        return _NULL_RANK
    if desc:
        return (1, value)
    return (1, _Reversed(value))


class _Reversed:
    """Wrapper inverting comparison order (for ASC ranks)."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        return other.value < self.value

    def __le__(self, other: "_Reversed") -> bool:
        return other.value <= self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and other.value == self.value

    def __gt__(self, other: "_Reversed") -> bool:
        return other.value > self.value

    def __ge__(self, other: "_Reversed") -> bool:
        return other.value >= self.value

    def __hash__(self) -> int:
        return hash(("_Reversed", self.value))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Reversed({self.value!r})"


class Boundary:
    """Shared, monotonically tightening pruning boundary.

    Owned by a TopK (or top-k-aware GROUP BY) operator and consulted by
    its upstream scan. ``rank`` is ``None`` until the heap holds k rows;
    afterwards it is the rank of the k-th best row and only ever
    increases.
    """

    def __init__(self, desc: bool = True):
        self.desc = desc
        self.rank: tuple | None = None
        self.updates = 0

    @property
    def is_active(self) -> bool:
        return self.rank is not None

    def update(self, rank: tuple) -> None:
        """Raise the boundary to ``rank`` (ignores loosening updates)."""
        if self.rank is None or rank > self.rank:
            self.rank = rank
            self.updates += 1

    def update_value(self, value: Any) -> None:
        self.update(rank_of(value, self.desc))


class TopKPruner:
    """Decides partition skips against a boundary using zone maps."""

    def __init__(self, order_column: str, boundary: Boundary):
        self.order_column = order_column
        self.boundary = boundary
        self.checks = 0
        self.skipped = 0

    def best_possible_rank(self, zone_map: ZoneMap) -> tuple:
        """The best rank any row of the partition could achieve."""
        try:
            stats = zone_map.stats(self.order_column)
        except Exception:
            return (2,)  # no metadata: assume the best
        if not stats.present:
            return (2,)
        if not stats.has_values:
            return _NULL_RANK
        best = stats.max_value if self.boundary.desc else stats.min_value
        return rank_of(best, self.boundary.desc)

    def should_skip(self, zone_map: ZoneMap) -> bool:
        """True if no row of this partition can enter the top-k heap.

        Strictly-worse comparison: a partition whose best rank *equals*
        the boundary could still tie and SQL top-k with ties broken
        arbitrarily does not require it, but we keep ties for
        determinism (skip only when strictly worse).
        """
        self.checks += 1
        if not self.boundary.is_active:
            return False
        if self.best_possible_rank(zone_map) < self.boundary.rank:
            self.skipped += 1
            return True
        return False


class OrderStrategy(enum.Enum):
    """Partition processing order for top-k scans (§5.3).

    The paper evaluates ``NONE`` and ``FULL_SORT`` and cautions that
    naive sorting "might accidentally de-prioritize scanning
    micro-partitions that actually contain matching rows" under
    selective filters; ``FULLY_MATCHING_FIRST`` is the strategy that
    "accounts for that": partitions proven fully-matching (§4.2) are
    scanned first (each in best-rank order), guaranteeing the heap
    fills with qualifying rows immediately.
    """

    NONE = "none"        #: keep the incoming (arbitrary) order
    FULL_SORT = "sort"   #: sort all partitions by their best rank
    #: fully-matching partitions first (sorted), then the rest (sorted)
    FULLY_MATCHING_FIRST = "fully_matching_first"

    def order(self, scan_set: ScanSet, order_column: str, desc: bool,
              fully_matching: Iterable[int] = ()) -> ScanSet:
        if self is OrderStrategy.NONE:
            return scan_set

        def best_rank(entry: tuple[int, ZoneMap]) -> tuple:
            _, zone_map = entry
            try:
                stats = zone_map.stats(order_column)
            except Exception:
                return (2,)
            if not stats.present:
                return (2,)
            if not stats.has_values:
                return _NULL_RANK
            best = stats.max_value if desc else stats.min_value
            return rank_of(best, desc)

        if self is OrderStrategy.FULLY_MATCHING_FIRST:
            fm_ids = set(fully_matching)

            def key(entry: tuple[int, ZoneMap]) -> tuple:
                return (entry[0] in fm_ids,) + best_rank(entry)

            ordered = sorted(scan_set.entries, key=key, reverse=True)
        else:
            ordered = sorted(scan_set.entries, key=best_rank,
                             reverse=True)
        return ScanSet(ordered)


def initialize_boundary(scan_set: ScanSet,
                        fully_matching_ids: Iterable[int],
                        order_column: str, k: int,
                        desc: bool) -> Boundary:
    """Pre-compute an initial boundary at compile time (§5.4).

    Uses fully-matching partitions only (their rows are guaranteed to
    reach the heap) and takes the stricter of two candidates:

    1. the k-th best extremum (max for DESC) across fully-matching
       partitions — each of the k best partitions contributes at least
       one row at least that good;
    2. the cumulative-row-count bound: order fully-matching partitions
       by their *worst* value (min for DESC) descending; once the
       cumulative row count reaches k, every counted row is at least as
       good as the current partition's worst value. Partitions with
       NULLs in the ORDER BY column are excluded here since their NULL
       rows rank below any value.
    """
    boundary = Boundary(desc=desc)
    if k <= 0:
        return boundary
    fm_ids = set(fully_matching_ids)
    stats_list = []
    for partition_id, zone_map in scan_set:
        if partition_id not in fm_ids:
            continue
        try:
            stats = zone_map.stats(order_column)
        except Exception:
            continue
        if stats.present and stats.has_values:
            stats_list.append(stats)
    if not stats_list:
        return boundary

    candidates: list[tuple] = []

    # Candidate 1: k-th best extremum across fully-matching partitions.
    best_values = sorted(
        (s.max_value if desc else s.min_value for s in stats_list),
        key=lambda v: rank_of(v, desc), reverse=True)
    if len(best_values) >= k:
        candidates.append(rank_of(best_values[k - 1], desc))

    # Candidate 2: cumulative row count over worst values (NULL-free
    # partitions only — NULL rows would rank below the partition min).
    null_free = [s for s in stats_list if s.null_count == 0]
    null_free.sort(key=lambda s: rank_of(
        s.min_value if desc else s.max_value, desc), reverse=True)
    cumulative = 0
    for stats in null_free:
        cumulative += stats.row_count
        if cumulative >= k:
            worst = stats.min_value if desc else stats.max_value
            candidates.append(rank_of(worst, desc))
            break

    if candidates:
        boundary.update(max(candidates))
    return boundary
