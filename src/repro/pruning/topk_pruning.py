"""Top-k pruning: boundary-value partition skipping at runtime (§5).

The TopK operator's heap induces a *boundary value* — the k-th best
value seen so far. Before a scan loads a micro-partition it compares
the partition's min/max for the ORDER BY column against the boundary:
for DESC ordering, a partition whose max is below the boundary cannot
contribute to the result and is skipped. The boundary tightens as the
scan progresses (a runtime, data-dependent technique in the spirit of
the IR community's block-max WAND).

NULL ordering: this engine sorts NULLs *last* regardless of direction,
so NULL order keys are the worst possible rank and never block pruning.

This module also implements the partition processing-order strategies
of §5.3 and the upfront boundary initialization of §5.4.
"""

from __future__ import annotations

import enum
import threading
from typing import TYPE_CHECKING, Any, Iterable

from ..storage.zonemap import ZoneMap
from .base import ScanSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .stats_index import StatsIndex

#: Rank tuples order as (has_value, value); NULLs rank below everything
#: for DESC and above nothing for ASC because we always sort NULLS LAST.
_NULL_RANK = (0, 0)


def rank_of(value: Any, desc: bool) -> tuple:
    """Total-order rank of one ORDER BY key; higher rank = better.

    For DESC queries larger values are better; for ASC smaller values
    are better, which we encode by negating numeric values and using a
    wrapper for strings.
    """
    if value is None:
        return _NULL_RANK
    if desc:
        return (1, value)
    return (1, _Reversed(value))


class _Reversed:
    """Wrapper inverting comparison order (for ASC ranks)."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        return other.value < self.value

    def __le__(self, other: "_Reversed") -> bool:
        return other.value <= self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and other.value == self.value

    def __gt__(self, other: "_Reversed") -> bool:
        return other.value > self.value

    def __ge__(self, other: "_Reversed") -> bool:
        return other.value >= self.value

    def __hash__(self) -> int:
        return hash(("_Reversed", self.value))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Reversed({self.value!r})"


class Boundary:
    """Shared, monotonically tightening pruning boundary.

    Owned by a TopK (or top-k-aware GROUP BY) operator and consulted by
    its upstream scan. ``rank`` is ``None`` until the heap holds k rows;
    afterwards it is the rank of the k-th best row and only ever
    increases.

    Thread safety: parallel top-k scans share one boundary between the
    consumer (which publishes tightenings) and morsel/prefetch workers
    (which read it for claim-time re-checks). :meth:`update` is a
    lock-guarded tighten-only compare-and-swap, so ``rank`` is monotone
    under concurrency and ``updates`` counts exactly the successful
    tightenings. Readers take no lock: a single attribute read sees
    either the old or the new rank, both of which are sound (the old
    one merely skips less).
    """

    def __init__(self, desc: bool = True):
        self.desc = desc
        self.rank: tuple | None = None
        self.updates = 0
        self._lock = threading.Lock()

    @property
    def is_active(self) -> bool:
        return self.rank is not None

    def update(self, rank: tuple) -> None:
        """Raise the boundary to ``rank`` (ignores loosening updates)."""
        # Cheap unlocked reject: the boundary is monotone, so a rank
        # already at-or-below the published one can never win the CAS.
        current = self.rank
        if current is not None and rank <= current:
            return
        with self._lock:
            if self.rank is None or rank > self.rank:
                self.rank = rank
                self.updates += 1

    def update_value(self, value: Any) -> None:
        self.update(rank_of(value, self.desc))


class TopKPruner:
    """Decides partition skips against a boundary using zone maps.

    With a :class:`~repro.pruning.stats_index.StatsIndex` attached, the
    boundary is classified against the packed zone-map lanes in one
    numpy pass per boundary epoch (re-arrival of a tightened rank) and
    per-partition checks become mask lookups; entries the index cannot
    vouch for by object identity (degraded ``without_stats()`` copies,
    stale rows) and lanes the boundary value cannot bind to exactly
    fall back to the scalar path, which stays the differential oracle.
    """

    def __init__(self, order_column: str, boundary: Boundary,
                 index: "StatsIndex | None" = None):
        self.order_column = order_column
        self.boundary = boundary
        self.index = index
        self.checks = 0
        self.skipped = 0
        #: checks served from the vectorized skip mask vs the scalar
        #: zone-map walk (feeds cost-model charging and observability).
        self.vector_checks = 0
        self.fallback_checks = 0
        #: vectorized mask recomputations (one per boundary epoch).
        self.mask_epochs = 0
        self._mask_lock = threading.Lock()
        #: (boundary rank, skip mask) pair published atomically so
        #: concurrent readers never pair a mask with the wrong rank.
        self._mask_state: tuple[tuple, Any] | None = None
        self._mask_unusable = False

    def best_possible_rank(self, zone_map: ZoneMap) -> tuple:
        """The best rank any row of the partition could achieve."""
        try:
            stats = zone_map.stats(self.order_column)
        except Exception:
            return (2,)  # no metadata: assume the best
        if not stats.present:
            return (2,)
        if not stats.has_values:
            return _NULL_RANK
        best = stats.max_value if self.boundary.desc else stats.min_value
        return rank_of(best, self.boundary.desc)

    def should_skip(self, zone_map: ZoneMap,
                    partition_id: int | None = None) -> bool:
        """True if no row of this partition can enter the top-k heap.

        Strictly-worse comparison: a partition whose best rank *equals*
        the boundary could still tie and SQL top-k with ties broken
        arbitrarily does not require it, but we keep ties for
        determinism (skip only when strictly worse).
        """
        self.checks += 1
        rank = self.boundary.rank
        if rank is None:
            return False
        verdict = self._vector_verdict(zone_map, partition_id, rank)
        if verdict is None:
            self.fallback_checks += 1
            verdict = self.best_possible_rank(zone_map) < rank
        else:
            self.vector_checks += 1
        if verdict:
            self.skipped += 1
        return verdict

    def peek_skip(self, zone_map: ZoneMap,
                  partition_id: int | None = None) -> bool:
        """Counter-free skip check for advisory call sites.

        Morsel workers (claim-time re-checks) and the prefetcher
        (fetch-time re-validation) use this so profile counters and the
        simulated clock stay bit-identical to a serial scan, where those
        call sites do not exist. Sound because the boundary only
        tightens: a skip observed here implies the consumer's accounted
        check also skips.
        """
        rank = self.boundary.rank
        if rank is None:
            return False
        verdict = self._vector_verdict(zone_map, partition_id, rank)
        if verdict is not None:
            return verdict
        return self.best_possible_rank(zone_map) < rank

    # -- vectorized boundary classification ----------------------------
    def _vector_verdict(self, zone_map: ZoneMap,
                        partition_id: int | None,
                        rank: tuple) -> bool | None:
        """Mask verdict for one partition, or None to fall back."""
        index = self.index
        if index is None or partition_id is None or self._mask_unusable:
            return None
        row = index.row_of(partition_id)
        if row is None or index.zone_map_at(row) is not zone_map:
            return None
        mask = self._mask_for(rank)
        if mask is None:
            return None
        return bool(mask[row])

    def _mask_for(self, rank: tuple):
        """The skip mask for ``rank``, recomputed once per epoch.

        A stale mask (older, looser rank) is never served for a newer
        rank — verdicts always describe exactly the rank the caller
        read, matching the scalar oracle bit for bit.
        """
        state = self._mask_state
        if state is not None and state[0] == rank:
            return state[1]
        with self._mask_lock:
            state = self._mask_state
            if state is not None and state[0] == rank:
                return state[1]
            if self._mask_unusable:
                return None
            mask = self._compute_mask(rank)
            if mask is None:
                self._mask_unusable = True
                return None
            self._mask_state = (rank, mask)
            self.mask_epochs += 1
            return mask

    def _compute_mask(self, rank: tuple):
        if rank == _NULL_RANK:
            # NULLs-last: no best-possible rank is strictly below the
            # NULL rank, so an all-NULL boundary prunes nothing.
            import numpy as np

            return np.zeros(len(self.index), dtype=bool)
        if len(rank) != 2 or rank[0] != 1:
            return None
        value = rank[1]
        if not self.boundary.desc:
            if not isinstance(value, _Reversed):
                return None
            value = value.value
        from .stats_index import topk_skip_mask

        return topk_skip_mask(self.index, self.order_column,
                              self.boundary.desc, value)


class OrderStrategy(enum.Enum):
    """Partition processing order for top-k scans (§5.3).

    The paper evaluates ``NONE`` and ``FULL_SORT`` and cautions that
    naive sorting "might accidentally de-prioritize scanning
    micro-partitions that actually contain matching rows" under
    selective filters; ``FULLY_MATCHING_FIRST`` is the strategy that
    "accounts for that": partitions proven fully-matching (§4.2) are
    scanned first (each in best-rank order), guaranteeing the heap
    fills with qualifying rows immediately.
    """

    NONE = "none"        #: keep the incoming (arbitrary) order
    FULL_SORT = "sort"   #: sort all partitions by their best rank
    #: fully-matching partitions first (sorted), then the rest (sorted)
    FULLY_MATCHING_FIRST = "fully_matching_first"

    def order(self, scan_set: ScanSet, order_column: str, desc: bool,
              fully_matching: Iterable[int] = ()) -> ScanSet:
        if self is OrderStrategy.NONE:
            return scan_set

        def best_rank(entry: tuple[int, ZoneMap]) -> tuple:
            _, zone_map = entry
            try:
                stats = zone_map.stats(order_column)
            except Exception:
                return (2,)
            if not stats.present:
                return (2,)
            if not stats.has_values:
                return _NULL_RANK
            best = stats.max_value if desc else stats.min_value
            return rank_of(best, desc)

        if self is OrderStrategy.FULLY_MATCHING_FIRST:
            fm_ids = set(fully_matching)

            def key(entry: tuple[int, ZoneMap]) -> tuple:
                return (entry[0] in fm_ids,) + best_rank(entry)

            ordered = sorted(scan_set.entries, key=key, reverse=True)
        else:
            ordered = sorted(scan_set.entries, key=best_rank,
                             reverse=True)
        return scan_set.with_entries(ordered)


def initialize_boundary(scan_set: ScanSet,
                        fully_matching_ids: Iterable[int],
                        order_column: str, k: int,
                        desc: bool) -> Boundary:
    """Pre-compute an initial boundary at compile time (§5.4).

    Uses fully-matching partitions only (their rows are guaranteed to
    reach the heap) and takes the stricter of two candidates:

    1. the k-th best extremum (max for DESC) across fully-matching
       partitions — each of the k best partitions contributes at least
       one row at least that good;
    2. the cumulative-row-count bound: order fully-matching partitions
       by their *worst* value (min for DESC) descending; once the
       cumulative row count reaches k, every counted row is at least as
       good as the current partition's worst value. Partitions with
       NULLs in the ORDER BY column are excluded here since their NULL
       rows rank below any value.
    """
    boundary = Boundary(desc=desc)
    if k <= 0:
        return boundary
    fm_ids = set(fully_matching_ids)
    stats_list = []
    for partition_id, zone_map in scan_set:
        if partition_id not in fm_ids:
            continue
        try:
            stats = zone_map.stats(order_column)
        except Exception:
            continue
        if stats.present and stats.has_values:
            stats_list.append(stats)
    if not stats_list:
        return boundary

    candidates: list[tuple] = []

    # Candidate 1: k-th best extremum across fully-matching partitions.
    best_values = sorted(
        (s.max_value if desc else s.min_value for s in stats_list),
        key=lambda v: rank_of(v, desc), reverse=True)
    if len(best_values) >= k:
        candidates.append(rank_of(best_values[k - 1], desc))

    # Candidate 2: cumulative row count over worst values (NULL-free
    # partitions only — NULL rows would rank below the partition min).
    null_free = [s for s in stats_list if s.null_count == 0]
    null_free.sort(key=lambda s: rank_of(
        s.min_value if desc else s.max_value, desc), reverse=True)
    cumulative = 0
    for stats in null_free:
        cumulative += stats.row_count
        if cumulative >= k:
            worst = stats.min_value if desc else stats.max_value
            candidates.append(rank_of(worst, desc))
            break

    if candidates:
        boundary.update(max(candidates))
    return boundary
