"""Adaptive pruning trees: filter reordering and cutoff (§3.2, Fig. 3).

Compile-time pruning evaluates a tree of filter predicates against each
partition's metadata. Two adaptations keep that affordable on huge
tables:

* **Reordering** — children of AND/OR nodes are freely reorderable.
  Under AND, fast and highly pruning filters go first (they shrink work
  via short-circuit); under OR, fast filters *unlikely* to prune go
  first (any not-pruned child short-circuits the OR).
* **Cutoff** — a filter that is slow or ineffective is dropped from
  pruning (it is still applied during execution). Only nodes directly
  below an AND may be cut: cutting an OR child would make the whole OR
  unable to prune, so the OR itself is what gets cut, recursively.

Both adaptations rely on monitored per-node statistics: evaluation
count, decisive-prune count, and simulated evaluation cost (we charge
cost units proportional to expression size, converted to milliseconds
by the cost model, so experiments are deterministic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..expr import ast
from ..expr.pruning import TriState, prune_partition
from ..expr.rewrite import widen_for_pruning
from ..storage.zonemap import ZoneMap
from ..types import Schema
from .base import PruneCategory, PruningResult, ScanSet


@dataclass
class TreeConfig:
    """Tuning knobs for the adaptive behaviour."""

    enable_reorder: bool = True
    enable_cutoff: bool = True
    #: re-sort a node's children every this many evaluations
    reorder_interval: int = 32
    #: minimum evaluations before a node may be cut off
    cutoff_min_samples: int = 64
    #: simulated cost (ms) of one pruning check per expression node
    check_ms_per_unit: float = 0.002
    #: estimated cost (ms) of scanning one partition if not pruned;
    #: the continue-vs-stop model compares pruning cost against this
    partition_scan_ms: float = 5.0


@dataclass
class NodeStats:
    """Monitoring data for one tree node."""

    label: str
    evaluations: int = 0
    decisive_prunes: int = 0
    cost_units_spent: int = 0
    cut: bool = False

    @property
    def prune_rate(self) -> float:
        if self.evaluations == 0:
            return 0.0
        return self.decisive_prunes / self.evaluations

    @property
    def avg_cost_units(self) -> float:
        if self.evaluations == 0:
            return 0.0
        return self.cost_units_spent / self.evaluations


class _Node:
    """Base tree node; subclasses return (verdict, cost_units)."""

    def __init__(self, label: str):
        self.stats = NodeStats(label)
        #: the (sub)predicate this node evaluates, for deferral
        self.expr: ast.Expr | None = None

    def verdict(self, zone_map: ZoneMap) -> tuple[TriState, int]:
        raise NotImplementedError

    def iter_nodes(self):
        yield self


class _Leaf(_Node):
    """A single prunable predicate."""

    def __init__(self, expr: ast.Expr, schema: Schema):
        super().__init__(expr.to_sql())
        self.expr = expr
        self.widened = widen_for_pruning(expr)
        self.schema = schema
        self.cost_units = sum(1 for _ in expr.walk())

    def verdict(self, zone_map: ZoneMap) -> tuple[TriState, int]:
        if self.stats.cut:
            return TriState.MAYBE, 0
        self.stats.evaluations += 1
        self.stats.cost_units_spent += self.cost_units
        result = prune_partition(self.widened, zone_map, self.schema)
        if result == TriState.NEVER:
            self.stats.decisive_prunes += 1
            return TriState.NEVER, self.cost_units
        return TriState.MAYBE, self.cost_units


class _Branch(_Node):
    """Shared AND/OR behaviour: ordered children plus reordering."""

    def __init__(self, label: str, children: Sequence[_Node],
                 config: TreeConfig):
        super().__init__(label)
        self.children = list(children)
        self.config = config

    def iter_nodes(self):
        yield self
        for child in self.children:
            yield from child.iter_nodes()

    def _maybe_reorder(self) -> None:
        if not self.config.enable_reorder:
            return
        if self.stats.evaluations % self.config.reorder_interval != 0:
            return
        self.children.sort(key=self._priority, reverse=True)

    def _priority(self, child: _Node) -> float:
        raise NotImplementedError


class _And(_Branch):
    def __init__(self, children: Sequence[_Node], config: TreeConfig):
        super().__init__("AND", children, config)

    def _priority(self, child: _Node) -> float:
        # Effective-and-cheap first: prune probability per cost unit.
        cost = max(child.stats.avg_cost_units, 1e-9)
        return child.stats.prune_rate / cost

    def verdict(self, zone_map: ZoneMap) -> tuple[TriState, int]:
        if self.stats.cut:
            return TriState.MAYBE, 0
        self.stats.evaluations += 1
        self._maybe_reorder()
        spent = 0
        for child in self.children:
            result, cost = child.verdict(zone_map)
            spent += cost
            if result == TriState.NEVER:
                # Short-circuit: one pruning child decides the AND.
                self.stats.decisive_prunes += 1
                self.stats.cost_units_spent += spent
                return TriState.NEVER, spent
        self.stats.cost_units_spent += spent
        return TriState.MAYBE, spent


class _Or(_Branch):
    def __init__(self, children: Sequence[_Node], config: TreeConfig):
        super().__init__("OR", children, config)

    def _priority(self, child: _Node) -> float:
        # Cheap filters unlikely to prune first: any non-pruning child
        # short-circuits the OR to MAYBE.
        cost = max(child.stats.avg_cost_units, 1e-9)
        return (1.0 - child.stats.prune_rate) / cost

    def verdict(self, zone_map: ZoneMap) -> tuple[TriState, int]:
        self.stats.evaluations += 1
        self._maybe_reorder()
        spent = 0
        for child in self.children:
            result, cost = child.verdict(zone_map)
            spent += cost
            if result != TriState.NEVER:
                self.stats.cost_units_spent += spent
                return TriState.MAYBE, spent
        self.stats.decisive_prunes += 1
        self.stats.cost_units_spent += spent
        return TriState.NEVER, spent


class PruningTree:
    """Adaptive pruning over a predicate's boolean structure."""

    def __init__(self, predicate: ast.Expr, schema: Schema,
                 config: TreeConfig | None = None):
        self.schema = schema
        self.config = config or TreeConfig()
        self.root = self._build(predicate)
        self.partitions_seen = 0
        self.simulated_ms = 0.0

    def _build(self, expr: ast.Expr) -> _Node:
        if isinstance(expr, ast.And):
            node: _Node = _And(
                [self._build(c) for c in expr.children()], self.config)
        elif isinstance(expr, ast.Or):
            node = _Or([self._build(c) for c in expr.children()],
                       self.config)
        else:
            node = _Leaf(expr, self.schema)
        node.expr = expr
        return node

    def classify(self, zone_map: ZoneMap) -> TriState:
        """NEVER/MAYBE verdict for one partition, updating statistics."""
        self.partitions_seen += 1
        verdict, cost = self.root.verdict(zone_map)
        self.simulated_ms += cost * self.config.check_ms_per_unit
        if self.config.enable_cutoff:
            self._apply_cutoffs()
        return verdict

    def _apply_cutoffs(self) -> None:
        """Cut slow/ineffective nodes sitting directly below an AND.

        Continue-vs-stop model (§3.2): keeping a pruner is worth it when
        its expected saving per partition — prune_rate x scan cost —
        exceeds its expected checking cost. Nodes failing that test are
        cut; their filters still run at execution time.
        """
        config = self.config
        for node in self.root.iter_nodes():
            if not isinstance(node, _And):
                continue
            for child in node.children:
                stats = child.stats
                if stats.cut:
                    continue
                if stats.evaluations < config.cutoff_min_samples:
                    continue
                expected_saving = (stats.prune_rate
                                   * config.partition_scan_ms)
                expected_cost = (stats.avg_cost_units
                                 * config.check_ms_per_unit)
                if expected_saving < expected_cost:
                    stats.cut = True

    def prune(self, scan_set: ScanSet) -> PruningResult:
        kept = []
        pruned_ids = []
        for partition_id, zone_map in scan_set:
            if self.classify(zone_map) == TriState.NEVER:
                pruned_ids.append(partition_id)
            else:
                kept.append((partition_id, zone_map))
        return PruningResult(
            technique=PruneCategory.FILTER,
            before=len(scan_set),
            kept=ScanSet(kept),
            pruned_ids=pruned_ids,
            checks=self.partitions_seen,
        )

    def node_stats(self) -> list[NodeStats]:
        """Flat monitoring snapshot of every node (root first)."""
        return [node.stats for node in self.root.iter_nodes()]

    def cut_predicates(self) -> list[ast.Expr]:
        """Predicates of topmost cut-off nodes.

        These are the filters whose compile-time pruning was halted;
        §3.2 notes their pruning "might still be deferred to the highly
        parallel query execution stage".
        """
        cut: list[ast.Expr] = []
        self._collect_cut(self.root, cut)
        return cut

    def _collect_cut(self, node: _Node, out: list[ast.Expr]) -> None:
        if node.stats.cut:
            if node.expr is not None:
                out.append(node.expr)
            return  # children of a cut node are subsumed
        if isinstance(node, _Branch):
            for child in node.children:
                self._collect_cut(child, out)
