"""Build-side value summaries for join pruning (§6.1).

Summarizing build-side join keys "is a trade-off between accuracy and
the memory size of the employed data structure" — the summary crosses
the network to probe-side workers. Three summaries spanning that
trade-off:

* :class:`MinMaxSummary` — one global [min, max]; negligible size, low
  pruning power;
* :class:`RangeSetSummary` — a bounded set of disjoint [lo, hi]
  intervals covering all build values; the "balanced" choice Snowflake
  describes, able to prune partitions that fall into gaps between value
  clusters;
* :class:`BloomFilter` — classic row-level filter built from scratch;
  cannot answer range-overlap questions directly, so for *partition*
  pruning it enumerates small integer ranges and otherwise degrades to
  its companion min/max bound. Its main job is skipping hash-table
  probes row by row.

All summaries answer conservatively: ``might_contain``/
``might_overlap_range`` may return true for absent values (false
positives) but never false for present ones — the "probabilistic"
guarantee of §6.2.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Any, Iterable, Sequence

import numpy as np

_HASH_SEEDS = (0x9E3779B97F4A7C15, 0xC2B2AE3D27D4EB4F, 0x165667B19E3779F9)


class MinMaxSummary:
    """Global minimum and maximum of the build-side values."""

    def __init__(self, values: Iterable[Any]):
        self.lo: Any = None
        self.hi: Any = None
        self.count = 0
        for value in values:
            if value is None:
                continue
            self.count += 1
            if self.lo is None or value < self.lo:
                self.lo = value
            if self.hi is None or value > self.hi:
                self.hi = value

    @property
    def is_empty(self) -> bool:
        return self.count == 0

    def might_contain(self, value: Any) -> bool:
        if self.is_empty or value is None:
            return False
        return self.lo <= value <= self.hi

    def might_overlap_range(self, lo: Any, hi: Any) -> bool:
        """Could any build value fall inside [lo, hi]?"""
        if self.is_empty:
            return False
        return self.lo <= hi and lo <= self.hi

    def nbytes(self) -> int:
        return 16


class RangeSetSummary:
    """A bounded set of disjoint intervals covering all build values.

    Built by sorting the distinct values and greedily merging the
    closest adjacent gaps until at most ``max_ranges`` intervals remain.
    This keeps the largest gaps — exactly where probe partitions can be
    pruned.
    """

    def __init__(self, values: Iterable[Any], max_ranges: int = 64):
        if max_ranges < 1:
            raise ValueError("max_ranges must be >= 1")
        distinct = sorted({v for v in values if v is not None})
        self.max_ranges = max_ranges
        self.ranges: list[tuple[Any, Any]] = _build_ranges(
            distinct, max_ranges)
        #: upper endpoints, sorted (intervals are disjoint and ordered);
        #: probes bisect this instead of hand-rolling the search
        self._upper_bounds: list[Any] = [hi for _, hi in self.ranges]

    @property
    def is_empty(self) -> bool:
        return not self.ranges

    def might_contain(self, value: Any) -> bool:
        if value is None:
            return False
        return self.might_overlap_range(value, value)

    def might_overlap_range(self, lo: Any, hi: Any) -> bool:
        """O(log n) bisect for an interval intersecting [lo, hi].

        The first interval whose upper endpoint reaches ``lo`` is the
        only candidate: intervals are disjoint and sorted, so every
        earlier one ends below ``lo`` and every later one starts past
        the candidate. It intersects iff it starts at or below ``hi``.
        """
        i = bisect_left(self._upper_bounds, lo)
        return i < len(self.ranges) and self.ranges[i][0] <= hi

    def nbytes(self) -> int:
        return 16 * len(self.ranges)

    def __repr__(self) -> str:
        return f"RangeSetSummary({len(self.ranges)} ranges)"


def _build_ranges(distinct: Sequence[Any],
                  max_ranges: int) -> list[tuple[Any, Any]]:
    if not distinct:
        return []
    if len(distinct) <= max_ranges:
        return [(v, v) for v in distinct]
    # Strings cannot measure gap width; fall back to one covering range.
    first = distinct[0]
    if not isinstance(first, (int, float)):
        return [(distinct[0], distinct[-1])]
    # Keep the max_ranges-1 widest gaps as splits.
    gaps = [(distinct[i + 1] - distinct[i], i)
            for i in range(len(distinct) - 1)]
    gaps.sort(reverse=True)
    split_after = sorted(i for _, i in gaps[:max_ranges - 1])
    ranges = []
    start = 0
    for i in split_after:
        ranges.append((distinct[start], distinct[i]))
        start = i + 1
    ranges.append((distinct[start], distinct[-1]))
    return ranges


class BloomFilter:
    """A from-scratch Bloom filter [Bloom 1970] over hashable values.

    Sized for a target false-positive probability; uses ``k``
    double-hashing probes derived from two 64-bit mixes.
    """

    def __init__(self, expected_items: int, fpp: float = 0.01):
        if not 0 < fpp < 1:
            raise ValueError("fpp must be in (0, 1)")
        expected_items = max(1, expected_items)
        n_bits = max(
            8, int(-expected_items * math.log(fpp) / (math.log(2) ** 2)))
        self.n_bits = n_bits
        self.n_hashes = max(1, round(n_bits / expected_items * math.log(2)))
        self.bits = np.zeros(n_bits, dtype=np.bool_)
        self.count = 0

    @staticmethod
    def _mix(value: Any) -> tuple[int, int]:
        base = hash(value) & 0xFFFFFFFFFFFFFFFF
        h1 = (base * _HASH_SEEDS[0] + _HASH_SEEDS[2]) & 0xFFFFFFFFFFFFFFFF
        h2 = ((base ^ (base >> 33)) * _HASH_SEEDS[1]) & 0xFFFFFFFFFFFFFFFF
        return h1, h2 | 1  # odd step so all probes differ

    def add(self, value: Any) -> None:
        if value is None:
            return
        h1, h2 = self._mix(value)
        for i in range(self.n_hashes):
            self.bits[(h1 + i * h2) % self.n_bits] = True
        self.count += 1

    def add_all(self, values: Iterable[Any]) -> None:
        for value in values:
            self.add(value)

    def might_contain(self, value: Any) -> bool:
        if value is None:
            return False
        h1, h2 = self._mix(value)
        return all(self.bits[(h1 + i * h2) % self.n_bits]
                   for i in range(self.n_hashes))

    def might_overlap_range(self, lo: Any, hi: Any,
                            enumeration_limit: int = 1024) -> bool:
        """Range probe by enumerating small integer ranges.

        For non-integer or wide ranges a Bloom filter cannot answer and
        must say "maybe".
        """
        if self.count == 0:
            return False
        if (isinstance(lo, (int, np.integer))
                and isinstance(hi, (int, np.integer))
                and hi - lo + 1 <= enumeration_limit):
            return any(self.might_contain(int(v))
                       for v in range(int(lo), int(hi) + 1))
        return True

    def fill_ratio(self) -> float:
        return float(self.bits.mean())

    def nbytes(self) -> int:
        return self.n_bits // 8
