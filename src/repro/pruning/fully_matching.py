"""Fully-matching partition detection via the inverted predicate (§4.2).

The paper's procedure: run a second pruning pass with the inverted
predicate — "species NOT LIKE 'Alpine%' OR s < 50" for the running
example — *without* modifying the scan set. A partition that the
inverted pass would prune contains no row failing the predicate, hence
every row matches.

Under three-valued logic the inversion must treat NULL as failing (a
NULL predicate row is excluded by WHERE), which
:func:`repro.expr.rewrite.not_true` handles.

This module exists alongside the direct tri-state ALWAYS detection in
:mod:`repro.expr.pruning`; tests assert the two agree wherever both
can decide.
"""

from __future__ import annotations

from ..expr import ast
from ..expr.pruning import TriState, prune_partition
from ..expr.rewrite import not_true
from ..types import Schema
from .base import ScanSet


def find_fully_matching_inverted(predicate: ast.Expr, scan_set: ScanSet,
                                 schema: Schema) -> list[int]:
    """Identify fully-matching partitions with the two-pass method.

    Returns partition ids whose every row satisfies ``predicate``.
    Empty partitions are excluded: they are vacuously fully-matching
    but contribute no rows, so counting them would let LIMIT pruning
    build useless scan sets.
    """
    inverted = not_true(predicate)
    fully_matching = []
    for partition_id, zone_map in scan_set:
        if zone_map.row_count == 0:
            continue
        verdict = prune_partition(inverted, zone_map, schema)
        if verdict == TriState.NEVER:
            fully_matching.append(partition_id)
    return fully_matching
