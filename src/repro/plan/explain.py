"""EXPLAIN rendering: physical plans with pruning annotations.

``Catalog.explain(sql)`` compiles a query — running all compile-time
pruning — and renders the operator tree, showing per-scan partition
counts before/after pruning, fully-matching partitions, attached
runtime pruners, and join summaries. Nothing is executed.
"""

from __future__ import annotations

from ..engine.operators import (
    ChunkSource,
    EmptyOperator,
    Filter,
    HashAggregate,
    HashJoin,
    Limit,
    MetadataAggregateSource,
    Operator,
    Project,
    Scan,
    Sort,
    TopK,
)


def render_plan(root: Operator) -> str:
    """Multi-line text rendering of a physical operator tree."""
    lines: list[str] = []
    _render(root, lines, depth=0)
    return "\n".join(lines)


def _render(op: Operator, lines: list[str], depth: int) -> None:
    indent = "  " * depth
    lines.append(f"{indent}{_describe(op)}")
    for child in _children(op):
        _render(child, lines, depth + 1)


def _children(op: Operator) -> tuple[Operator, ...]:
    if isinstance(op, (Filter, Project, Sort, TopK, Limit,
                       HashAggregate)):
        return (op.child,)
    if isinstance(op, HashJoin):
        return (op.probe, op.build)
    return ()


def _describe(op: Operator) -> str:
    if isinstance(op, Scan):
        return _describe_scan(op)
    if isinstance(op, Filter):
        return f"Filter [{op.predicate.to_sql()}]"
    if isinstance(op, Project):
        return f"Project [{', '.join(op.names)}]"
    if isinstance(op, HashJoin):
        parts = [f"HashJoin [{op.join_type}] "
                 f"probe.{op.probe_key} = build.{op.build_key}, "
                 f"summary={op.summary_kind}"]
        if op.probe_scan is not None:
            parts.append("probe-side pruning: on")
        return ", ".join(parts)
    if isinstance(op, HashAggregate):
        keys = ", ".join(op.group_keys) or "<global>"
        aggs = ", ".join(f"{s.func}({s.input or '*'})"
                         for s in op.aggs)
        suffix = ""
        if op.topk_hint is not None:
            suffix = (f", top-k aware (k={op.topk_hint.k}, "
                      f"key={op.group_keys[op.topk_hint.key_index]})")
        return f"HashAggregate [keys: {keys}] [{aggs}]{suffix}"
    if isinstance(op, Sort):
        keys = ", ".join(
            f"{k.column} {'DESC' if k.desc else 'ASC'}"
            for k in op.keys)
        return f"Sort [{keys}]"
    if isinstance(op, TopK):
        boundary = "shared boundary" if op.boundary is not None \
            else "no boundary"
        direction = "DESC" if op.desc else "ASC"
        offset = f", offset={op.offset}" if op.offset else ""
        return (f"TopK [{op.order_column} {direction}, k={op.k}"
                f"{offset}] ({boundary})")
    if isinstance(op, Limit):
        offset = f" OFFSET {op.offset}" if op.offset else ""
        return f"Limit [{op.k}{offset}]"
    if isinstance(op, EmptyOperator):
        return "Empty (sub-tree eliminated)"
    if isinstance(op, MetadataAggregateSource):
        return (f"MetadataAggregate [{op.table}, "
                f"{op.partitions_covered} partitions, no data read]")
    if isinstance(op, ChunkSource):
        return "ChunkSource"
    return type(op).__name__


def _describe_scan(scan: Scan) -> str:
    profile = scan.profile
    total = profile.total_partitions
    current = len(scan.scan_set)
    annotations = [f"partitions: {current}/{total}"]
    if profile.filter_result is not None:
        result = profile.filter_result
        annotations.append(
            f"filter pruned {result.pruned} "
            f"(fully-matching: {len(result.fully_matching_ids)})")
    if profile.sketch_result is not None:
        by_kind = ", ".join(
            f"{kind}={count}" for kind, count in
            sorted(profile.sketch_pruned_by_kind.items()))
        annotations.append(
            f"sketch pruned {profile.sketch_result.pruned}"
            + (f" ({by_kind})" if by_kind else ""))
    if profile.skip_set_hit:
        annotations.append(
            f"skip-set hit (skipped {profile.skip_set_pruned})")
    if profile.pruning_mode:
        annotations.append(f"pruning: {profile.pruning_mode}")
    if profile.limit_report is not None:
        annotations.append(
            f"limit pruning: {profile.limit_report.outcome.value}")
    if scan.topk_pruners:
        active = any(p.boundary.is_active for p in scan.topk_pruners)
        annotations.append(
            "top-k boundary pruning"
            + (" (boundary pre-initialized)" if active else ""))
    if scan.runtime_filter_pruner is not None:
        annotations.append("deferred runtime filter pruning")
    if scan.columns is not None:
        annotations.append(f"columns: {', '.join(scan.columns)}")
    if profile.bytes_scanned:
        annotations.append(f"bytes scanned: {profile.bytes_scanned}")
    if profile.cache_hit:
        annotations.append("predicate cache hit")
    if profile.cache_hits or profile.cache_misses:
        annotations.append(
            f"data cache: {profile.cache_hits} hits / "
            f"{profile.cache_misses} misses "
            f"(saved {profile.cache_bytes_saved} bytes)")
    if profile.prefetched_partitions:
        annotations.append(
            f"prefetched: {profile.prefetched_partitions}")
    if profile.prefetched_then_skipped:
        annotations.append(
            f"prefetched-then-skipped: "
            f"{profile.prefetched_then_skipped} "
            f"({profile.prefetched_then_skipped_bytes} bytes)")
    if profile.degraded:
        annotations.append(
            f"DEGRADED: {profile.degraded_partitions} partition(s) "
            f"without metadata, scanned unconditionally")
    if profile.metadata_retries:
        annotations.append(
            f"metadata retries: {profile.metadata_retries}")
    workers = scan._parallel_workers()
    if workers > 1:
        annotations.append(f"parallel scan x{workers}")
    return f"Scan {scan.table} [{', '.join(annotations)}]"
