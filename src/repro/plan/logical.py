"""Logical plan nodes.

The tree mirrors the SQL structure after binding:
``Limit(Sort(Project(Aggregate(Filter(Join(Scan, Scan)))))))``, with
any subset of the levels present. Nodes expose:

* ``output_schema(resolver)`` — schema given a table-schema resolver;
* ``shape()`` — a literal-insensitive fingerprint of the plan, used to
  measure plan-shape repetitiveness (Figure 12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..errors import PlanError
from ..expr import ast
from ..types import DataType, Field, Schema

SchemaResolver = Callable[[str], Schema]


class LogicalNode:
    """Base class for logical operators."""

    def children(self) -> tuple["LogicalNode", ...]:
        return ()

    def output_schema(self, resolver: SchemaResolver) -> Schema:
        raise NotImplementedError

    def shape(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.shape()


class LogicalScan(LogicalNode):
    """Scan of a named table, with an optional pushed-down predicate."""

    def __init__(self, table: str, predicate: ast.Expr | None = None):
        self.table = table.lower()
        self.predicate = predicate

    def output_schema(self, resolver: SchemaResolver) -> Schema:
        return resolver(self.table)

    def with_predicate(self, predicate: ast.Expr) -> "LogicalScan":
        if self.predicate is None:
            combined = predicate
        else:
            combined = ast.And(self.predicate, predicate)
        return LogicalScan(self.table, combined)

    def shape(self) -> str:
        pred = self.predicate.shape() if self.predicate else ""
        return f"Scan({self.table}{'|' + pred if pred else ''})"


class LogicalFilter(LogicalNode):
    """Residual predicate that could not be pushed into a scan."""

    def __init__(self, child: LogicalNode, predicate: ast.Expr):
        self.child = child
        self.predicate = predicate

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.child,)

    def output_schema(self, resolver: SchemaResolver) -> Schema:
        return self.child.output_schema(resolver)

    def shape(self) -> str:
        return f"Filter({self.predicate.shape()}, {self.child.shape()})"


class LogicalProject(LogicalNode):
    """SELECT list computation."""

    def __init__(self, child: LogicalNode, exprs: Sequence[ast.Expr],
                 names: Sequence[str]):
        if len(exprs) != len(names):
            raise PlanError("project exprs/names length mismatch")
        self.child = child
        self.exprs = list(exprs)
        self.names = [n.lower() for n in names]

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.child,)

    def output_schema(self, resolver: SchemaResolver) -> Schema:
        child_schema = self.child.output_schema(resolver)
        return Schema(Field(name, expr.dtype(child_schema))
                      for name, expr in zip(self.names, self.exprs))

    def shape(self) -> str:
        inner = ",".join(e.shape() for e in self.exprs)
        return f"Project([{inner}], {self.child.shape()})"


class LogicalJoin(LogicalNode):
    """Single-key equi-join; left child is the probe/preserved side."""

    def __init__(self, left: LogicalNode, right: LogicalNode,
                 left_key: str, right_key: str,
                 join_type: str = "inner"):
        if join_type not in ("inner", "left_outer"):
            raise PlanError(f"unsupported join type {join_type!r}")
        self.left = left
        self.right = right
        self.left_key = left_key.lower()
        self.right_key = right_key.lower()
        self.join_type = join_type

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.left, self.right)

    def output_schema(self, resolver: SchemaResolver) -> Schema:
        return self.left.output_schema(resolver).concat(
            self.right.output_schema(resolver))

    def shape(self) -> str:
        return (f"Join[{self.join_type}]({self.left_key}="
                f"{self.right_key}, {self.left.shape()}, "
                f"{self.right.shape()})")


@dataclass(frozen=True)
class AggItem:
    """One aggregate: ``func(input_column) AS output``."""

    func: str                #: count / count_star / sum / min / max / avg
    input: str | None
    output: str

    def shape(self) -> str:
        return f"{self.func}({self.input or '*'})"


class LogicalAggregate(LogicalNode):
    """GROUP BY with aggregate outputs."""

    def __init__(self, child: LogicalNode, group_keys: Sequence[str],
                 aggs: Sequence[AggItem]):
        self.child = child
        self.group_keys = [k.lower() for k in group_keys]
        self.aggs = list(aggs)

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.child,)

    def output_schema(self, resolver: SchemaResolver) -> Schema:
        child_schema = self.child.output_schema(resolver)
        fields = [child_schema.field(k) for k in self.group_keys]
        for agg in self.aggs:
            if agg.func in ("count", "count_star"):
                dtype = DataType.INTEGER
            elif agg.func == "avg":
                dtype = DataType.DOUBLE
            else:
                if agg.input is None:
                    raise PlanError(f"{agg.func} needs an input column")
                dtype = child_schema.dtype_of(agg.input)
            fields.append(Field(agg.output, dtype))
        return Schema(fields)

    def shape(self) -> str:
        aggs = ",".join(a.shape() for a in self.aggs)
        keys = ",".join(self.group_keys)
        return f"Agg([{keys}],[{aggs}], {self.child.shape()})"


@dataclass(frozen=True)
class SortItem:
    column: str
    desc: bool = False

    def shape(self) -> str:
        return f"{self.column}{' DESC' if self.desc else ''}"


class LogicalSort(LogicalNode):
    def __init__(self, child: LogicalNode, keys: Sequence[SortItem]):
        if not keys:
            raise PlanError("sort requires at least one key")
        self.child = child
        self.keys = [SortItem(k.column.lower(), k.desc) for k in keys]

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.child,)

    def output_schema(self, resolver: SchemaResolver) -> Schema:
        return self.child.output_schema(resolver)

    def shape(self) -> str:
        keys = ",".join(k.shape() for k in self.keys)
        return f"Sort([{keys}], {self.child.shape()})"


class LogicalLimit(LogicalNode):
    def __init__(self, child: LogicalNode, k: int, offset: int = 0):
        if k < 0 or offset < 0:
            raise PlanError("LIMIT/OFFSET must be non-negative")
        self.child = child
        self.k = k
        self.offset = offset

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.child,)

    def output_schema(self, resolver: SchemaResolver) -> Schema:
        return self.child.output_schema(resolver)

    def shape(self) -> str:
        # k itself is a literal; Figure 12 measures plan *shapes*, so
        # the value of k is excluded from the fingerprint.
        return f"Limit({self.child.shape()})"
