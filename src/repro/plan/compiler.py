"""The pruning-aware query compiler.

Lowers a logical plan to physical operators, performing the paper's
compile-time pipeline along the way:

1. **Predicate pushdown** — WHERE conjuncts move to the scans they
   reference, so filter pruning sees them (§3).
2. **Compile-time filter pruning** — each scan's set is pruned against
   its predicate, with fully-matching partitions detected as a second
   output (§3, §4.2). A scan set pruned to nothing triggers sub-tree
   elimination (§2.1).
3. **LIMIT pushdown and pruning** — a LIMIT travels down through
   operators that never reduce rows (projections, the preserved side of
   outer joins) and, at the scan, minimizes the scan set using
   fully-matching partitions (§4).
4. **Top-k wiring** — ``ORDER BY x LIMIT k`` becomes a TopK operator
   sharing a boundary with the scan that produces ``x`` (§5.2),
   partitions are reordered for early tight boundaries (§5.3), the
   boundary is optionally pre-initialized (§5.4), TopK replicates to
   the preserved side of outer joins (Fig. 7c), and GROUP BY gets a
   top-k-aware path when ordering by a grouping key (Fig. 7d).
5. **Join pruning** wiring — hash joins get a handle on their probe
   scan so the build-side summary can prune it at runtime (§6).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field as dataclass_field
from typing import Callable

from ..engine.context import ExecContext, ScanProfile
from ..engine.chunk import Chunk
from ..engine.operators import (
    AggSpec,
    EmptyOperator,
    Filter,
    HashAggregate,
    HashJoin,
    Limit,
    MetadataAggregateSource,
    Operator,
    Project,
    Scan,
    Sort,
    SortKey,
    TopK,
    TopKGroupHint,
)
from ..errors import PlanError
from ..expr import ast
from ..expr.simplify import simplify
from ..pruning.base import ScanSet
from ..pruning.filter_pruning import FilterPruner, is_prunable
from ..pruning.fully_matching import find_fully_matching_inverted
from ..pruning.limit_pruning import LimitPruner
from ..pruning.predicate_cache import PredicateCache
from ..pruning.pruning_tree import PruningTree, TreeConfig
from ..pruning.stats_index import StatsIndex, VectorizedFilterPruner
from ..pruning.topk_pruning import (
    Boundary,
    OrderStrategy,
    TopKPruner,
    initialize_boundary,
)
from ..types import Schema
from . import logical as L


@dataclass
class CompilerOptions:
    """Feature switches, primarily for the paper's ablations."""

    enable_filter_pruning: bool = True
    enable_limit_pruning: bool = True
    enable_topk_pruning: bool = True
    enable_join_pruning: bool = True
    detect_fully_matching: bool = True
    #: use the adaptive pruning tree (§3.2) instead of the plain pruner
    use_pruning_tree: bool = False
    tree_config: TreeConfig | None = None
    #: re-attach compile-time-cut-off filters as runtime pruners on the
    #: scan (§3.2: deferring slow filters to the parallel warehouse)
    defer_cutoff_to_runtime: bool = True
    #: scan sets larger than this skip compile-time pruning entirely
    #: and prune at runtime instead — §3.2's "dynamically push
    #: compile-time pruning to a virtual warehouse" for extremely
    #: large tables. None = always prune at compile time.
    compile_prune_partition_limit: int | None = None
    topk_order_strategy: OrderStrategy = OrderStrategy.FULL_SORT
    topk_boundary_init: bool = True
    #: build inner joins on the smaller side, judged by post-pruning
    #: scan-set row counts (§2.1: pruning improves cardinality
    #: estimates and hence join decisions)
    enable_join_side_swap: bool = True
    #: replicate TopK to the preserved side of outer joins (Fig. 7c)
    topk_replicate_outer: bool = True
    summary_kind: str = "rangeset"
    use_bloom_row_filter: bool = True
    predicate_cache: PredicateCache | None = None
    #: answer global COUNT/MIN/MAX aggregates from zone maps alone,
    #: without scanning any data
    enable_metadata_aggregates: bool = True
    #: scans read only the columns the plan references (PAX layouts
    #: allow column-level reads, §2) — fewer bytes over the network
    enable_projection_pushdown: bool = True
    #: classify all partitions of a scan in one compiled numpy pass
    #: over the table's SoA stats index, falling back per partition to
    #: the AST walk wherever the kernels cannot bind (results are
    #: bit-identical either way; see pruning/stats_index.py)
    enable_vectorized_pruning: bool = True
    #: consult secondary sketches (n-gram filters, dictionaries,
    #: histograms — pruning/sketches.py) as an extra compile-time
    #: pruning pass after filter pruning, plus per-query-shape skip
    #: sets. No-op on catalogs without sketches enabled.
    enable_sketch_pruning: bool = True


class CatalogInterface:
    """What the compiler needs from a catalog (duck-typed)."""

    def schema_of(self, table: str) -> Schema:  # pragma: no cover
        raise NotImplementedError

    def scan_set(self, table: str) -> ScanSet:  # pragma: no cover
        raise NotImplementedError


@dataclass
class _Built:
    """Bookkeeping carried up during lowering."""

    op: Operator
    #: output column -> (scan operator, scan profile, scan column) for
    #: columns that trace to a scan through identity projections and
    #: probe-side joins — the top-k pruning targets.
    origins: dict[str, tuple[Scan, ScanProfile, str]] = dataclass_field(
        default_factory=dict)
    #: the scan a LIMIT may legally be pushed down to, if any
    limit_scan: Scan | None = None
    limit_profile: ScanProfile | None = None
    limit_fully_matching: list[int] = dataclass_field(default_factory=list)
    #: whether every row of the limit target's fully-matching
    #: partitions is guaranteed to reach this operator's output
    #: (prerequisite for upfront boundary init and LIMIT pruning)
    rows_guaranteed: bool = False
    #: whether this sub-plan's output preserves the probe scan's rows
    #: one-for-one or more (left-outer chains); used for replication
    preserved_chain: bool = False
    #: direct child Filter operator over the scan predicate, used by
    #: the predicate cache to learn which partitions had matches
    scan_filter_op: Filter | None = None
    scan_predicate: ast.Expr | None = None
    #: the HashAggregate below (possibly through identity projections),
    #: for Figure 7d's top-k-through-GROUP-BY wiring
    aggregate_op: HashAggregate | None = None
    #: upper bound on output rows derived from the *pruned* scan set —
    #: the cardinality-estimation benefit of compile-time pruning
    #: (§2.1); None when no estimate is possible
    estimated_rows: int | None = None


@dataclass
class CompiledQuery:
    """A lowered plan plus post-execution hooks (predicate cache)."""

    root: Operator
    context: ExecContext
    post_exec_hooks: list[Callable[[], None]] = dataclass_field(
        default_factory=list)
    #: per-compile scan-set memo: each table's zone maps are fetched
    #: from the metadata store once per query, not once per pruning
    #: stage (the metadata-aggregate probe used to re-fetch).
    scan_sets: dict[str, ScanSet] = dataclass_field(default_factory=dict)
    #: True when this query was lowered from a rebound plan-cache
    #: template rather than a cold-planned tree (repro.plancache).
    rebound: bool = False


class QueryCompiler:
    """Compiles logical plans against a catalog."""

    def __init__(self, catalog: CatalogInterface):
        self.catalog = catalog

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def compile(self, plan: L.LogicalNode, context: ExecContext,
                options: CompilerOptions | None = None) -> CompiledQuery:
        options = options or CompilerOptions()
        plan = push_down_filters(plan, self.catalog.schema_of)
        compiled = CompiledQuery(root=EmptyOperator(Schema([])),
                                 context=context)
        required: set[str] | None = None
        if options.enable_projection_pushdown:
            required = set(
                plan.output_schema(self.catalog.schema_of).names())
        built = self._build(plan, context, options, compiled,
                            required)
        compiled.root = built.op
        return compiled

    def compile_rebound(self, template: L.LogicalNode, binds,
                        slots, context: ExecContext,
                        options: CompilerOptions | None = None
                        ) -> CompiledQuery:
        """Rebind a cached logical-plan template and lower it.

        The plan-cache hit path: literal substitution is O(plan), and
        lowering then re-fetches scan sets and re-runs every
        data-dependent pruning pass against the current metadata — a
        rebound query can never reuse a stale scan set.
        """
        from ..plancache.parameterize import bind_plan

        compiled = self.compile(bind_plan(template, binds, slots),
                                context, options)
        compiled.rebound = True
        return compiled

    # ------------------------------------------------------------------
    # Lowering
    # ------------------------------------------------------------------
    def _build(self, node: L.LogicalNode, context: ExecContext,
               options: CompilerOptions, compiled: CompiledQuery,
               required: set[str] | None = None) -> _Built:
        if isinstance(node, L.LogicalScan):
            return self._build_scan(node, context, options, compiled,
                                    required)
        if isinstance(node, L.LogicalFilter):
            return self._build_filter(node, context, options, compiled,
                                      required)
        if isinstance(node, L.LogicalProject):
            return self._build_project(node, context, options,
                                       compiled, required)
        if isinstance(node, L.LogicalJoin):
            return self._build_join(node, context, options, compiled,
                                    required)
        if isinstance(node, L.LogicalAggregate):
            return self._build_aggregate(node, context, options,
                                         compiled, required)
        if isinstance(node, L.LogicalLimit):
            return self._build_limit(node, context, options, compiled,
                                     required)
        if isinstance(node, L.LogicalSort):
            child_required = _widen(required,
                                    {k.column for k in node.keys})
            child = self._build(node.child, context, options, compiled,
                                child_required)
            keys = [SortKey(k.column, k.desc) for k in node.keys]
            return _Built(op=Sort(context, child.op, keys))
        raise PlanError(f"cannot lower {type(node).__name__}")

    # -- Scan --------------------------------------------------------------
    def _build_scan(self, node: L.LogicalScan, context: ExecContext,
                    options: CompilerOptions,
                    compiled: CompiledQuery,
                    required: set[str] | None = None) -> _Built:
        schema = self.catalog.schema_of(node.table)
        scan_set, first_fetch = self._fetch_scan_set(
            node.table, context, compiled)
        profile = context.profile.new_scan(node.table)
        profile.total_partitions = len(scan_set)
        profile.degraded_partitions = len(scan_set.degraded_ids)
        if first_fetch:
            # Retry/backoff accounting belongs to whichever stage
            # actually performed the fetch (exactly one per query).
            profile.metadata_retries = scan_set.metadata_retries
            profile.metadata_backoff_ms = scan_set.metadata_backoff_ms
        predicate = node.predicate
        # Without predicates every partition is fully-matching (§4.2).
        fully_matching: list[int] = (
            scan_set.partition_ids if predicate is None else [])
        if predicate is not None:
            predicate = simplify(predicate, schema)
            profile.filter_eligible = is_prunable(predicate)
            if profile.filter_eligible:
                profile.filter_columns = tuple(
                    sorted(predicate.column_refs()))
            deferred: ast.Expr | None = None
            limit = options.compile_prune_partition_limit
            push_to_runtime = (limit is not None
                               and len(scan_set) > limit)
            if options.enable_filter_pruning and profile.filter_eligible:
                if push_to_runtime:
                    # Too many partitions to prune during compilation:
                    # the whole predicate prunes at runtime on the
                    # (parallel) warehouse instead. Fully-matching
                    # detection is lost — LIMIT pruning cannot fire.
                    deferred = predicate
                else:
                    with context.span("prune:filter",
                                      table=node.table) as span:
                        scan_set, fully_matching, deferred = \
                            self._filter_prune(node.table, predicate,
                                               scan_set, schema,
                                               profile, context,
                                               options)
                        if span is not None:
                            result = profile.filter_result
                            span.annotate(
                                before=result.before,
                                after=result.after,
                                fully_matching=len(
                                    result.fully_matching_ids),
                                mode=profile.pruning_mode)
            if options.enable_sketch_pruning and not push_to_runtime:
                scan_set, fully_matching = self._sketch_prune(
                    node.table, predicate, scan_set, schema,
                    fully_matching, profile, context)
        columns = self._scan_columns(schema, node.predicate, required)
        scan_schema = schema if columns is None \
            else schema.select(columns)
        scan = Scan(context, node.table, scan_schema, scan_set,
                    profile=profile, columns=columns)
        if options.enable_vectorized_pruning:
            # Runtime pruners (top-k boundaries, deferred filters,
            # join-filter summaries) classify against the same SoA
            # index compile-time pruning used; entries it cannot vouch
            # for by zone-map identity fall back to the scalar path.
            scan.stats_index = self._stats_index_for(node.table,
                                                     scan_set)
        if predicate is not None and deferred is not None:
            scan.attach_deferred_filter(
                FilterPruner(deferred, schema,
                             detect_fully_matching=False))
        op: Operator = scan
        filter_op = None
        if predicate is not None and not isinstance(
                predicate, ast.Literal):
            filter_op = Filter(context, scan, predicate)
            op = filter_op
        elif isinstance(predicate, ast.Literal) \
                and predicate.value is not True:
            # WHERE FALSE / WHERE NULL: nothing qualifies.
            op = EmptyOperator(scan_schema)
        self._apply_filter_cache(node, predicate, scan, filter_op,
                                 options, compiled)
        if options.enable_sketch_pruning:
            self._apply_skip_set(node, predicate, scan, filter_op,
                                 compiled)
        origins = {name: (scan, profile, name)
                   for name in scan_schema.names()}
        return _Built(
            op=op,
            origins=origins,
            limit_scan=scan,
            limit_profile=profile,
            limit_fully_matching=fully_matching,
            # With no predicate every partition is fully-matching
            # (§4.2) and all rows reach the output.
            rows_guaranteed=True,
            preserved_chain=True,
            scan_filter_op=filter_op,
            scan_predicate=predicate,
            estimated_rows=scan.scan_set.total_rows(),
        )

    def _fetch_scan_set(self, table: str, context: ExecContext,
                        compiled: CompiledQuery
                        ) -> tuple[ScanSet, bool]:
        """Fetch a table's scan set once per compiled query.

        Returns ``(scan_set, first_fetch)``. Metadata lookups and
        retry backoff are charged only on the actual fetch; later
        stages (the metadata-aggregate probe falling through to a real
        scan, self-joins) reuse the materialized zone maps.
        """
        key = table.lower()
        scan_set = compiled.scan_sets.get(key)
        if scan_set is not None:
            return scan_set, False
        scan_set = self.catalog.scan_set(table)
        compiled.scan_sets[key] = scan_set
        context.charge_metadata_lookups(len(scan_set),
                                        at_compile_time=True)
        # Retry backoff spent fetching metadata is compile-time delay.
        if scan_set.metadata_backoff_ms:
            context.charge_compile(scan_set.metadata_backoff_ms)
        return scan_set, True

    def _stats_index_for(self, table: str,
                         scan_set: ScanSet) -> StatsIndex:
        """The table's maintained stats index, or a transient one.

        Duck-typed catalogs without an index still get vectorized
        classification over an index built from the fetched scan set.
        """
        stats_index = getattr(self.catalog, "stats_index", None)
        if stats_index is not None:
            try:
                return stats_index(table)
            except Exception:  # noqa: BLE001 - never fail compilation
                pass
        return StatsIndex(scan_set)

    def _sketch_prune(self, table: str, predicate: ast.Expr,
                      scan_set: ScanSet, schema: Schema,
                      fully_matching: list[int], profile,
                      context: ExecContext
                      ) -> tuple[ScanSet, list[int]]:
        """Secondary-sketch pruning pass (pruning/sketches.py).

        Fails open at every step: catalogs without sketches, a
        degraded metadata read, or an unexpected error all leave the
        scan set untouched.
        """
        from ..pruning.sketches import SketchPruner, is_sketch_prunable

        config = getattr(self.catalog, "sketch_config", None)
        ngram_size = (config.ngram_size if config is not None else 3)
        profile.sketch_eligible = is_sketch_prunable(
            predicate, schema, ngram_size)
        sketches_of = getattr(self.catalog, "sketches_of", None)
        if not profile.sketch_eligible or sketches_of is None:
            return scan_set, fully_matching
        try:
            sketches = sketches_of(table)
        except Exception:  # noqa: BLE001 - metadata outage: fail open
            return scan_set, fully_matching
        if not sketches:
            return scan_set, fully_matching
        index = None
        sketch_index = getattr(self.catalog, "sketch_index", None)
        if sketch_index is not None:
            try:
                index = sketch_index(table)
            except Exception:  # noqa: BLE001 - scalar path suffices
                index = None
        with context.span("prune:sketch", table=table) as span:
            pruner = SketchPruner(predicate, schema, sketches,
                                  index=index, ngram_size=ngram_size)
            result = pruner.prune(scan_set)
            profile.sketch_result = result
            profile.sketch_pruned_by_kind = dict(pruner.pruned_by_kind)
            context.charge_prune_checks(result.checks,
                                        at_compile_time=True,
                                        vectorized=index is not None)
            if span is not None:
                span.annotate(before=result.before,
                              after=result.after,
                              by_kind=dict(pruner.pruned_by_kind))
        if result.pruned_ids:
            surviving = set(result.kept.partition_ids)
            fully_matching = [pid for pid in fully_matching
                              if pid in surviving]
        return result.kept, fully_matching

    def _apply_skip_set(self, node: L.LogicalScan,
                        predicate: ast.Expr | None, scan: Scan,
                        filter_op: Filter | None,
                        compiled: CompiledQuery) -> None:
        """Per-query-shape skip sets layered on the predicate cache.

        A complete prior execution of the same shape proved certain
        partitions empty; while the table version is unchanged they
        are skipped outright. Recording mirrors the predicate cache's
        completeness rule, additionally requiring no join pruning
        (join-pruned partitions were never filtered, so their
        emptiness is unproven).
        """
        skip_sets = getattr(self.catalog, "skip_sets", None)
        table_version = getattr(self.catalog, "table_version", None)
        if (skip_sets is None or table_version is None
                or predicate is None or filter_op is None):
            return
        try:
            version = table_version(node.table)
        except Exception:  # noqa: BLE001 - never fail compilation
            return
        empty = skip_sets.lookup(node.table, predicate, version)
        if empty:
            keep = [pid for pid in scan.scan_set.partition_ids
                    if pid not in empty
                    or pid in scan.scan_set.degraded_ids]
            pruned = len(scan.scan_set) - len(keep)
            if pruned:
                scan.scan_set = scan.scan_set.restrict(keep)
                scan.profile.skip_set_hit = True
                scan.profile.skip_set_pruned = pruned
                scan.context.trace_event(
                    "skip_set:hit", table=node.table,
                    partitions=pruned)
            return

        table, pred = node.table, predicate

        def record() -> None:
            profile = scan.profile
            complete = (not profile.early_terminated
                        and profile.limit_report is None
                        and profile.topk_checks == 0
                        and profile.join_result is None
                        and not profile.cache_hit
                        and not profile.skip_set_hit)
            if not complete:
                return
            try:
                current = table_version(table)
            except Exception:  # noqa: BLE001
                return
            if current != version:
                return  # DML raced the query; observation is stale
            matched = set(filter_op.partitions_with_matches)
            empty_ids = [pid for pid in scan.scan_set.partition_ids
                         if pid not in matched]
            if empty_ids:
                skip_sets.record(table, pred, version, empty_ids)

        compiled.post_exec_hooks.append(record)

    @staticmethod
    def _scan_columns(schema: Schema, predicate: ast.Expr | None,
                      required: set[str] | None) -> list[str] | None:
        """Columns the scan must read, in schema order.

        None means "all columns" (pushdown disabled or everything is
        referenced). A scan that needs no columns at all still reads
        the narrowest one so row counts survive.
        """
        if required is None:
            return None
        needed = set(required)
        if predicate is not None:
            needed |= predicate.column_refs()
        columns = [f.name for f in schema if f.name in needed]
        if not columns:
            columns = [schema.fields[0].name]
        if len(columns) == len(schema):
            return None
        return columns

    def _filter_prune(self, table: str, predicate: ast.Expr,
                      scan_set: ScanSet,
                      schema: Schema, profile: ScanProfile,
                      context: ExecContext,
                      options: CompilerOptions
                      ) -> tuple[ScanSet, list[int], ast.Expr | None]:
        deferred: ast.Expr | None = None
        started = time.perf_counter()
        if options.use_pruning_tree:
            tree = PruningTree(predicate, schema,
                               options.tree_config or TreeConfig())
            result = tree.prune(scan_set)
            profile.pruning_mode = "fallback"
            context.charge_compile(tree.simulated_ms)
            if options.detect_fully_matching:
                result.fully_matching_ids = find_fully_matching_inverted(
                    predicate, result.kept, schema)
                context.charge_prune_checks(len(result.kept),
                                            at_compile_time=True)
            if options.defer_cutoff_to_runtime:
                cut = tree.cut_predicates()
                if cut:
                    deferred = cut[0] if len(cut) == 1 \
                        else ast.And(cut)
        elif options.enable_vectorized_pruning:
            pruner = VectorizedFilterPruner(
                predicate, schema,
                detect_fully_matching=options.detect_fully_matching,
                index=self._stats_index_for(table, scan_set))
            result = pruner.prune(scan_set)
            profile.pruning_mode = pruner.mode
            if pruner.vector_checks:
                context.charge_prune_checks(pruner.vector_checks,
                                            at_compile_time=True,
                                            vectorized=True)
            if pruner.fallback_checks:
                context.charge_prune_checks(pruner.fallback_checks,
                                            at_compile_time=True)
        else:
            pruner = FilterPruner(
                predicate, schema,
                detect_fully_matching=options.detect_fully_matching)
            result = pruner.prune(scan_set)
            profile.pruning_mode = "fallback"
            context.charge_prune_checks(result.checks,
                                        at_compile_time=True)
        profile.pruning_ms += (time.perf_counter() - started) * 1000.0
        profile.filter_result = result
        return result.kept, list(result.fully_matching_ids), deferred

    def _apply_filter_cache(self, node: L.LogicalScan,
                            predicate: ast.Expr | None, scan: Scan,
                            filter_op: Filter | None,
                            options: CompilerOptions,
                            compiled: CompiledQuery) -> None:
        cache = options.predicate_cache
        if cache is None or predicate is None or filter_op is None:
            return
        entry = cache.lookup_filter(node.table, predicate)
        if entry is not None:
            scan.scan_set = scan.scan_set.restrict(entry.scan_ids())
            scan.profile.cache_hit = True
            scan.context.trace_event(
                "predicate_cache:hit", table=node.table,
                kind="filter", partitions=len(scan.scan_set))
            return

        table, pred = node.table, predicate

        def record() -> None:
            # Only cache scans that observed every partition that could
            # match: early termination, LIMIT pruning, and top-k skips
            # all leave unseen partitions whose absence from the entry
            # would corrupt later cache hits.
            profile = scan.profile
            complete = (not profile.early_terminated
                        and profile.limit_report is None
                        and profile.topk_checks == 0)
            if complete:
                cache.record_filter(
                    table, pred,
                    sorted(filter_op.partitions_with_matches))

        compiled.post_exec_hooks.append(record)

    # -- Filter (residual) ---------------------------------------------------
    def _build_filter(self, node: L.LogicalFilter, context: ExecContext,
                      options: CompilerOptions,
                      compiled: CompiledQuery,
                      required: set[str] | None = None) -> _Built:
        child_required = _widen(required, node.predicate.column_refs())
        child = self._build(node.child, context, options, compiled,
                            child_required)
        op = Filter(context, child.op, node.predicate)
        return _Built(
            op=op,
            origins=child.origins,
            # A residual filter reduces rows unpredictably: LIMIT
            # pushdown and row guarantees stop here (§4.3). The row
            # estimate stays as an upper bound.
            limit_scan=None,
            rows_guaranteed=False,
            preserved_chain=False,
            estimated_rows=child.estimated_rows,
        )

    # -- Project --------------------------------------------------------------
    def _build_project(self, node: L.LogicalProject,
                       context: ExecContext, options: CompilerOptions,
                       compiled: CompiledQuery,
                       required: set[str] | None = None) -> _Built:
        child_required = None
        if required is not None:
            child_required = set()
            for expr in node.exprs:
                child_required |= expr.column_refs()
        child = self._build(node.child, context, options, compiled,
                            child_required)
        op = Project(context, child.op, node.exprs, node.names)
        origins = {}
        for name, expr in zip(node.names, node.exprs):
            if isinstance(expr, ast.ColumnRef) and \
                    expr.name in child.origins:
                origins[name] = child.origins[expr.name]
        # Propagate the aggregate reference only through pure identity
        # projections (no renames), so output names still match the
        # aggregate's group keys.
        identity = all(
            isinstance(expr, ast.ColumnRef) and expr.name == name
            for name, expr in zip(node.names, node.exprs))
        return _Built(
            op=op,
            origins=origins,
            limit_scan=child.limit_scan,
            limit_profile=child.limit_profile,
            limit_fully_matching=child.limit_fully_matching,
            rows_guaranteed=child.rows_guaranteed,
            preserved_chain=child.preserved_chain,
            aggregate_op=child.aggregate_op if identity else None,
            estimated_rows=child.estimated_rows,
        )

    # -- Join --------------------------------------------------------------
    def _build_join(self, node: L.LogicalJoin, context: ExecContext,
                    options: CompilerOptions,
                    compiled: CompiledQuery,
                    required: set[str] | None = None) -> _Built:
        left_required = right_required = None
        if required is not None:
            resolver = self.catalog.schema_of
            left_names = set(node.left.output_schema(resolver).names())
            right_names = set(
                node.right.output_schema(resolver).names())
            left_required = (required & left_names) | {node.left_key}
            right_required = (required & right_names) \
                | {node.right_key}
        left = self._build(node.left, context, options, compiled,
                           left_required)
        right = self._build(node.right, context, options, compiled,
                            right_required)
        # Sub-tree elimination (§2.1): an inner join with a provably
        # empty side produces nothing — skip building/probing entirely.
        # (For LEFT OUTER only an empty *probe* side empties the join.)
        left_empty = left.estimated_rows == 0
        right_empty = right.estimated_rows == 0
        if left_empty or (right_empty and node.join_type == "inner"):
            schema = left.op.schema.concat(right.op.schema)
            return _Built(op=EmptyOperator(schema))
        swapped = False
        if (options.enable_join_side_swap
                and node.join_type == "inner"
                and left.estimated_rows is not None
                and right.estimated_rows is not None
                and left.estimated_rows < right.estimated_rows):
            # Build on the smaller side: the post-pruning scan-set row
            # counts are the cardinality estimates (§2.1). The output
            # column order is restored by a projection below.
            left, right = right, left
            node = L.LogicalJoin(node.right, node.left,
                                 node.right_key, node.left_key,
                                 node.join_type)
            swapped = True
        probe_scan = None
        probe_scan_column = None
        if options.enable_join_pruning and node.join_type == "inner":
            origin = left.origins.get(node.left_key)
            if origin is not None:
                probe_scan, _, probe_scan_column = origin
                context.profile.join_eligible = True
        op: Operator = HashJoin(
            context, left.op, right.op,
            probe_key=node.left_key, build_key=node.right_key,
            join_type=node.join_type,
            probe_scan=probe_scan,
            probe_scan_column=probe_scan_column,
            summary_kind=options.summary_kind,
            use_bloom_row_filter=options.use_bloom_row_filter,
        )
        if swapped:
            # Restore the SQL column order (original left first).
            names = (list(right.op.schema.names())
                     + list(left.op.schema.names()))
            op = Project(context, op,
                         [ast.ColumnRef(n) for n in names], names)
        origins = dict(left.origins)
        # Build-side columns do not carry pruning targets: build rows
        # are only forwarded when matched (not preserved in our joins).
        preserved = (node.join_type == "left_outer"
                     and left.preserved_chain)
        return _Built(
            op=op,
            origins=origins,
            # LIMIT pushes through the preserved side of an outer join
            # (§4.3): every preserved row yields at least one output.
            limit_scan=left.limit_scan if preserved else None,
            limit_profile=left.limit_profile if preserved else None,
            limit_fully_matching=(left.limit_fully_matching
                                  if preserved else []),
            rows_guaranteed=preserved and left.rows_guaranteed,
            preserved_chain=preserved,
        )

    # -- Aggregate --------------------------------------------------------------
    def _build_aggregate(self, node: L.LogicalAggregate,
                         context: ExecContext,
                         options: CompilerOptions,
                         compiled: CompiledQuery,
                         required: set[str] | None = None) -> _Built:
        metadata_result = self._try_metadata_aggregate(node, context,
                                                       options, compiled)
        if metadata_result is not None:
            return metadata_result
        child_required = None
        if required is not None:
            child_required = set(node.group_keys)
            child_required |= {a.input for a in node.aggs
                               if a.input is not None}
        child = self._build(node.child, context, options, compiled,
                            child_required)
        aggs = [AggSpec(a.func, a.input, a.output) for a in node.aggs]
        op = HashAggregate(context, child.op, node.group_keys, aggs)
        # Group keys that trace to a scan stay traceable: Figure 7d's
        # top-k-through-GROUP-BY needs the origin of the grouping key.
        origins = {k: child.origins[k] for k in node.group_keys
                   if k in child.origins}
        return _Built(op=op, origins=origins, aggregate_op=op)

    def _try_metadata_aggregate(self, node: L.LogicalAggregate,
                                context: ExecContext,
                                options: CompilerOptions,
                                compiled: CompiledQuery
                                ) -> _Built | None:
        """Answer a global COUNT/MIN/MAX aggregate from zone maps.

        Applies when the aggregate sits directly on an unfiltered scan
        with no grouping and every aggregate is metadata-derivable;
        returns None (fall back to execution) otherwise — including
        when any partition lacks statistics for a referenced column.
        """
        if not options.enable_metadata_aggregates:
            return None
        if not isinstance(node.child, L.LogicalScan) \
                or node.child.predicate is not None:
            return None
        if node.group_keys:
            return None
        supported = {"count_star", "count", "min", "max"}
        if not all(agg.func in supported for agg in node.aggs):
            return None
        table = node.child.table
        # Memoized fetch: if this probe declines, the fallback scan
        # reuses the same materialized zone maps instead of re-fetching
        # every partition's metadata.
        scan_set, _ = self._fetch_scan_set(table, context, compiled)
        if scan_set.degraded_ids:
            # Some zone maps are unavailable: a metadata-only answer
            # would be wrong (e.g. COUNT from partial row counts).
            # Fall back to scanning the data.
            return None
        values = []
        for agg in node.aggs:
            value = _metadata_aggregate_value(agg, scan_set)
            if value is _UNAVAILABLE:
                return None
            values.append(value)
        schema = node.output_schema(self.catalog.schema_of)
        chunk = Chunk.from_rows(schema, [tuple(values)])
        profile = context.profile.new_scan(table)
        profile.total_partitions = len(scan_set)
        profile.metadata_only = True
        source = MetadataAggregateSource(
            schema, chunk, table, partitions_covered=len(scan_set))
        return _Built(op=source)

    # -- Limit / TopK --------------------------------------------------------------
    def _build_limit(self, node: L.LogicalLimit, context: ExecContext,
                     options: CompilerOptions,
                     compiled: CompiledQuery,
                     required: set[str] | None = None) -> _Built:
        child_node = node.child
        if isinstance(child_node, L.LogicalSort):
            return self._build_topk(node, child_node, context, options,
                                    compiled, required)
        context.profile.limit_eligible = True
        child = self._build(child_node, context, options, compiled,
                            required)
        self._apply_limit_pruning(node, child, context, options)
        return _Built(op=Limit(context, child.op, node.k, node.offset))

    def _apply_limit_pruning(self, node: L.LogicalLimit, child: _Built,
                             context: ExecContext,
                             options: CompilerOptions) -> None:
        if not options.enable_limit_pruning:
            return
        scan = child.limit_scan
        if scan is None or not child.rows_guaranteed:
            return
        with context.span("prune:limit", table=scan.table) as span:
            pruner = LimitPruner(node.k + node.offset)
            report = pruner.prune(scan.scan_set,
                                  child.limit_fully_matching)
            context.charge_prune_checks(len(scan.scan_set),
                                        at_compile_time=True)
            scan.scan_set = report.result.kept
            if span is not None:
                span.annotate(before=report.result.before,
                              after=report.result.after,
                              outcome=report.outcome.value)
        if child.limit_profile is not None:
            child.limit_profile.limit_report = report

    def _build_topk(self, limit_node: L.LogicalLimit,
                    sort_node: L.LogicalSort, context: ExecContext,
                    options: CompilerOptions,
                    compiled: CompiledQuery,
                    required: set[str] | None = None) -> _Built:
        context.profile.topk_eligible = True
        sort_key = sort_node.keys[0]
        sort_keys = [SortKey(item.column, item.desc)
                     for item in sort_node.keys]
        k, offset = limit_node.k, limit_node.offset
        child_required = _widen(required,
                                {item.column for item in sort_node.keys})
        child = self._build(sort_node.child, context, options, compiled,
                            child_required)
        # Boundary pruning works on the leading sort key: a partition
        # whose best leading rank is strictly worse than the k-th row's
        # is lexicographically out regardless of secondary keys.
        # All wiring below is leading-key based and remains sound for
        # multi-key orderings (strictly-worse leading rank implies
        # lexicographically worse overall).
        boundary = Boundary(desc=sort_key.desc)
        target = self._wire_topk_pruning(
            child, sort_key, k + offset, boundary, context, options)
        probe_child_op = child.op
        if (options.topk_replicate_outer and target is not None
                and child.preserved_chain
                and isinstance(child.op, HashJoin)
                and child.op.join_type == "left_outer"
                and all(item.column in child.origins
                        for item in sort_node.keys)):
            # Fig. 7c: replicate the TopK onto the preserved probe side
            # of the outer join; all its k rows flow past the join.
            join_op = child.op
            replicated = TopK(context, join_op.probe, sort_keys,
                              k + offset, boundary=boundary)
            join_op.probe = replicated
        topk = TopK(context, probe_child_op, sort_keys, k,
                    boundary=boundary if target is not None else None,
                    offset=offset)
        self._apply_topk_cache(child, sort_node, k, topk, options,
                               compiled)
        return _Built(op=topk)

    def _wire_topk_pruning(self, child: _Built, sort_key: L.SortItem,
                           keep: int, boundary: Boundary,
                           context: ExecContext,
                           options: CompilerOptions,
                           allow_aggregate: bool = True,
                           allow_boundary_init: bool = True
                           ) -> Scan | None:
        """Attach boundary pruning to the scan producing the sort key."""
        if not options.enable_topk_pruning or keep == 0:
            return None
        if child.aggregate_op is not None:
            if not allow_aggregate:
                return None
            return self._wire_topk_through_aggregate(
                child, sort_key, keep, boundary, context, options)
        origin = child.origins.get(sort_key.column)
        if origin is None:
            return None
        scan, profile, scan_column = origin
        pruner = TopKPruner(scan_column, boundary,
                            index=scan.stats_index)
        scan.attach_topk_pruner(pruner)
        context.trace_event("prune:topk", table=scan.table,
                            column=scan_column, keep=keep)
        scan.scan_set = options.topk_order_strategy.order(
            scan.scan_set, scan_column, sort_key.desc,
            fully_matching=child.limit_fully_matching)
        if options.topk_boundary_init and child.rows_guaranteed \
                and allow_boundary_init:
            initial = initialize_boundary(
                scan.scan_set, child.limit_fully_matching, scan_column,
                keep, sort_key.desc)
            if initial.is_active:
                boundary.update(initial.rank)
            context.charge_prune_checks(
                len(child.limit_fully_matching), at_compile_time=True)
        return scan

    def _wire_topk_through_aggregate(self, child: _Built,
                                     sort_key: L.SortItem, keep: int,
                                     boundary: Boundary,
                                     context: ExecContext,
                                     options: CompilerOptions
                                     ) -> Scan | None:
        """Fig. 7d: ORDER BY a grouping key through a GROUP BY."""
        agg_op = child.aggregate_op
        assert isinstance(agg_op, HashAggregate)
        if sort_key.column not in agg_op.group_keys:
            return None
        origin = child.origins.get(sort_key.column)
        if origin is None:
            return None
        scan, profile, scan_column = origin
        agg_op.topk_hint = TopKGroupHint(
            key_index=agg_op.group_keys.index(sort_key.column),
            k=keep, desc=sort_key.desc, boundary=boundary)
        pruner = TopKPruner(scan_column, boundary,
                            index=scan.stats_index)
        scan.attach_topk_pruner(pruner)
        scan.scan_set = options.topk_order_strategy.order(
            scan.scan_set, scan_column, sort_key.desc)
        return scan

    def _apply_topk_cache(self, child: _Built,
                          sort_node: L.LogicalSort, k: int, topk: TopK,
                          options: CompilerOptions,
                          compiled: CompiledQuery) -> None:
        cache = options.predicate_cache
        scan = child.limit_scan
        if cache is None or scan is None:
            return
        table = scan.table
        predicate = child.scan_predicate
        # Cache key must cover the full ordering, not just the leading
        # column — different secondary keys select different rows.
        key_fingerprint = ",".join(
            f"{item.column}:{'D' if item.desc else 'A'}"
            for item in sort_node.keys)
        leading_desc = sort_node.keys[0].desc
        entry = cache.lookup_topk(table, predicate, key_fingerprint,
                                  leading_desc, k)
        if entry is not None:
            scan.scan_set = scan.scan_set.restrict(entry.scan_ids())
            scan.profile.cache_hit = True
            scan.context.trace_event(
                "predicate_cache:hit", table=table,
                kind="topk", partitions=len(scan.scan_set))
            return

        def record() -> None:
            contributing = topk.contributing_partitions
            if contributing:
                cache.record_topk(table, predicate, key_fingerprint,
                                  leading_desc, k,
                                  sorted(contributing))

        compiled.post_exec_hooks.append(record)


def _widen(required: set[str] | None,
           extra: set[str]) -> set[str] | None:
    """Add columns to a requirement set (None = everything needed)."""
    if required is None:
        return None
    return required | extra


#: sentinel: a metadata aggregate could not be derived
_UNAVAILABLE = object()


def _metadata_aggregate_value(agg: L.AggItem, scan_set: ScanSet):
    """One aggregate's value from zone maps, or ``_UNAVAILABLE``."""
    from ..types import DataType, days_to_date

    if agg.func == "count_star":
        return scan_set.total_rows()
    merged = None
    dtype = None
    total_non_null = 0
    for _, zone_map in scan_set:
        try:
            stats = zone_map.stats(agg.input)
        except Exception:
            return _UNAVAILABLE
        if not stats.present:
            return _UNAVAILABLE
        dtype = stats.dtype
        total_non_null += stats.row_count - stats.null_count
        merged = stats if merged is None else merged.merge(stats)
    if agg.func == "count":
        return total_non_null
    if merged is None or merged.min_value is None:
        return None  # MIN/MAX over no (non-null) rows is NULL
    value = merged.min_value if agg.func == "min" else merged.max_value
    if dtype == DataType.DATE:
        return days_to_date(value)
    return value


# ----------------------------------------------------------------------
# Predicate pushdown
# ----------------------------------------------------------------------
def push_down_filters(node: L.LogicalNode,
                      resolver) -> L.LogicalNode:
    """Move single-table WHERE conjuncts into their scans."""
    if isinstance(node, L.LogicalFilter):
        child = push_down_filters(node.child, resolver)
        return _push_predicate(child, node.predicate, resolver)
    if isinstance(node, L.LogicalScan):
        return node
    # Rebuild interior nodes with pushed children.
    if isinstance(node, L.LogicalProject):
        return L.LogicalProject(push_down_filters(node.child, resolver),
                                node.exprs, node.names)
    if isinstance(node, L.LogicalJoin):
        return L.LogicalJoin(push_down_filters(node.left, resolver),
                             push_down_filters(node.right, resolver),
                             node.left_key, node.right_key,
                             node.join_type)
    if isinstance(node, L.LogicalAggregate):
        return L.LogicalAggregate(
            push_down_filters(node.child, resolver), node.group_keys,
            node.aggs)
    if isinstance(node, L.LogicalSort):
        return L.LogicalSort(push_down_filters(node.child, resolver),
                             node.keys)
    if isinstance(node, L.LogicalLimit):
        return L.LogicalLimit(push_down_filters(node.child, resolver),
                              node.k, node.offset)
    return node


def _conjuncts(predicate: ast.Expr) -> list[ast.Expr]:
    if isinstance(predicate, ast.And):
        out: list[ast.Expr] = []
        for child in predicate.children():
            out.extend(_conjuncts(child))
        return out
    return [predicate]


def _combine(conjuncts: list[ast.Expr]) -> ast.Expr | None:
    if not conjuncts:
        return None
    if len(conjuncts) == 1:
        return conjuncts[0]
    return ast.And(conjuncts)


def _push_predicate(node: L.LogicalNode, predicate: ast.Expr,
                    resolver) -> L.LogicalNode:
    """Push a predicate as far down as its column references allow."""
    if isinstance(node, L.LogicalScan):
        return node.with_predicate(predicate)
    if isinstance(node, L.LogicalJoin):
        left_columns = set(node.left.output_schema(resolver).names())
        right_columns = set(node.right.output_schema(resolver).names())
        left_parts, right_parts, residual = [], [], []
        for conjunct in _conjuncts(predicate):
            refs = conjunct.column_refs()
            if refs and refs <= left_columns:
                left_parts.append(conjunct)
            elif refs and refs <= right_columns:
                # Pushing below the null-producing side of an outer
                # join changes semantics; keep those as residuals.
                if node.join_type == "inner":
                    right_parts.append(conjunct)
                else:
                    residual.append(conjunct)
            else:
                residual.append(conjunct)
        left = node.left
        right = node.right
        left_pred = _combine(left_parts)
        right_pred = _combine(right_parts)
        if left_pred is not None:
            left = _push_predicate(left, left_pred, resolver)
        if right_pred is not None:
            right = _push_predicate(right, right_pred, resolver)
        new_join = L.LogicalJoin(left, right, node.left_key,
                                 node.right_key, node.join_type)
        residual_pred = _combine(residual)
        if residual_pred is None:
            return new_join
        return L.LogicalFilter(new_join, residual_pred)
    if isinstance(node, L.LogicalFilter):
        merged = ast.And(node.predicate, predicate)
        return _push_predicate(node.child, merged, resolver)
    # Any other operator: keep the filter where it is.
    return L.LogicalFilter(node, predicate)
