"""Logical query plans and the pruning-aware compiler.

:mod:`.logical` defines the logical operator tree produced by the SQL
front end; :mod:`.compiler` lowers it to physical operators while
performing the paper's compile-time work: predicate pushdown, filter
pruning, fully-matching detection, LIMIT pushdown and pruning, top-k
wiring (boundaries, partition ordering, upfront initialization), and
sub-tree elimination.
"""

from .logical import (
    LogicalNode,
    LogicalScan,
    LogicalFilter,
    LogicalProject,
    LogicalJoin,
    LogicalAggregate,
    LogicalSort,
    LogicalLimit,
    AggItem,
    SortItem,
)
from .compiler import CompilerOptions, QueryCompiler, CompiledQuery

__all__ = [
    "LogicalNode",
    "LogicalScan",
    "LogicalFilter",
    "LogicalProject",
    "LogicalJoin",
    "LogicalAggregate",
    "LogicalSort",
    "LogicalLimit",
    "AggItem",
    "SortItem",
    "CompilerOptions",
    "QueryCompiler",
    "CompiledQuery",
]
