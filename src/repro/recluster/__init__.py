"""Telemetry-driven background reclustering (the layout loop).

The paper measures pruning; this package *improves* it. Three layers:

* :mod:`~repro.recluster.advisor` — mines fleet telemetry for hot
  filter columns with poor eligibility-conditioned pruning ratios and
  scores candidate clustering keys;
* :mod:`~repro.recluster.engine` — rewrites the worst-overlapping
  partition neighbourhood one byte-budgeted slice at a time through
  the catalog's WAL-backed rewrite path;
* :mod:`~repro.recluster.service` — the background loop that runs
  slices between queries under the service's writer-preference lock,
  pausing on admission pressure.

See ``docs/reclustering.md`` for heuristics and budget semantics.
"""

from .advisor import (ClusteringAdvice, ColumnHeat, WorkloadAdvisor,
                      best_advice)
from .engine import IncrementalReclusterer, ReclusterJob, SliceReport
from .service import ReclusterService

__all__ = [
    "ClusteringAdvice",
    "ColumnHeat",
    "WorkloadAdvisor",
    "best_advice",
    "IncrementalReclusterer",
    "ReclusterJob",
    "SliceReport",
    "ReclusterService",
]
