"""Workload advisor: mine fleet telemetry for clustering candidates.

The paper's §7 telemetry study shows pruning effectiveness "primarily
depends on how data is distributed among micro-partitions" (§1). This
module closes the loop: instead of asking an operator to guess
clustering keys, it mines the fleet's own :class:`TelemetryRecord`
stream for *hot filter columns with poor eligibility-conditioned
pruning ratios* — columns queries keep filtering on while zone maps
keep failing to prune — and scores them as candidate clustering keys.

The signal chain is end-to-end telemetry: the compiler's predicate
walk records which columns each prunable filter referenced
(``ScanProfile.filter_columns``), the telemetry layer folds that into
per-table ``filter_pruning_by_table`` counters, and the advisor
aggregates those per ``(table, column)`` — no query-log parsing, no
operator hints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..catalog import Catalog
    from ..obs.telemetry import TelemetryRecord

__all__ = ["ColumnHeat", "ClusteringAdvice", "WorkloadAdvisor"]

#: telemetry kinds the advisor mines (maintenance records are not
#: workload signal).
_QUERY_KINDS = frozenset({"select", "dml"})


@dataclass(frozen=True)
class ColumnHeat:
    """Aggregate pruning behaviour of one filtered column."""

    table: str
    column: str
    #: executed queries whose prunable filter referenced this column
    queries: int
    #: summed pre-pruning partition population of those queries' scans
    partitions_total: int
    #: partitions filter pruning actually removed on those scans
    partitions_pruned: int

    @property
    def pruning_ratio(self) -> float:
        """Eligibility-conditioned filter pruning ratio (0 when the
        scans saw no partitions)."""
        if self.partitions_total == 0:
            return 0.0
        return self.partitions_pruned / self.partitions_total


@dataclass(frozen=True)
class ClusteringAdvice:
    """One recommended clustering key, with its supporting evidence."""

    table: str
    column: str
    #: queries that filtered on the column (workload heat)
    queries: int
    #: observed eligibility-conditioned pruning ratio (the problem)
    pruning_ratio: float
    #: current zone-map overlap depth on the column (the cause)
    clustering_depth: float
    #: heat x headroom x disorder — higher is more urgent
    score: float

    def __str__(self) -> str:
        return (f"recluster {self.table} by {self.column}: "
                f"{self.queries} queries at ratio "
                f"{self.pruning_ratio:.2f}, depth "
                f"{self.clustering_depth:.2f} (score {self.score:.1f})")


class WorkloadAdvisor:
    """Scores candidate clustering keys from telemetry alone.

    A column is recommended only when all three hold:

    * **hot** — at least ``min_queries`` executed (non-cache-hit)
      queries filtered on it;
    * **poorly pruning** — its aggregate eligibility-conditioned
      filter pruning ratio is below ``ratio_threshold``;
    * **fixable** — the table's live zone-map overlap depth on the
      column exceeds ``depth_threshold`` and the table has at least
      two partitions. Degenerate layouts (single partition, all-NULL
      key) score depth 1 and are therefore never recommended.

    The depth check makes the advisor self-limiting: once a recluster
    brings the column's depth down, the same telemetry no longer
    produces a recommendation even before the ring refills with
    post-recluster records.
    """

    def __init__(self, min_queries: int = 8,
                 ratio_threshold: float = 0.5,
                 depth_threshold: float = 1.5):
        if min_queries < 1:
            raise ValueError("min_queries must be >= 1")
        self.min_queries = min_queries
        self.ratio_threshold = ratio_threshold
        self.depth_threshold = depth_threshold

    def column_heat(self, records: Iterable["TelemetryRecord"]
                    ) -> list[ColumnHeat]:
        """Aggregate per-(table, column) filter-pruning evidence.

        Only executed queries count: errors, cancellations, and
        result-cache hits carry no pruning signal (a cache hit pruned
        nothing; it skipped the warehouse entirely).
        """
        acc: dict[tuple[str, str], list[int]] = {}
        for record in records:
            if record.status != "ok" or record.result_cache_hit:
                continue
            if record.kind not in _QUERY_KINDS:
                continue
            for table, (total, pruned) in \
                    record.filter_pruning_by_table.items():
                for column in record.filter_columns.get(table, ()):
                    entry = acc.setdefault((table, column), [0, 0, 0])
                    entry[0] += 1
                    entry[1] += total
                    entry[2] += pruned
        return [ColumnHeat(table=t, column=c, queries=q,
                           partitions_total=total,
                           partitions_pruned=pruned)
                for (t, c), (q, total, pruned) in acc.items()]

    def advise(self, records: Iterable["TelemetryRecord"],
               catalog: "Catalog") -> list[ClusteringAdvice]:
        """Recommended clustering keys, most urgent first.

        ``score = queries x (1 - ratio) x (depth - 1)``: workload heat
        times pruning headroom times physical disorder. A perfectly
        clustered column (depth 1) or a perfectly pruning one
        (ratio 1) scores zero and is filtered out beforehand.
        """
        advice: list[ClusteringAdvice] = []
        for heat in self.column_heat(records):
            if heat.queries < self.min_queries:
                continue
            if heat.pruning_ratio >= self.ratio_threshold:
                continue
            info = self._clustering_info(catalog, heat.table,
                                         heat.column)
            if info is None or info.partition_count < 2:
                continue
            if info.average_depth <= self.depth_threshold:
                continue
            score = (heat.queries
                     * (1.0 - heat.pruning_ratio)
                     * (info.average_depth - 1.0))
            advice.append(ClusteringAdvice(
                table=heat.table, column=heat.column,
                queries=heat.queries,
                pruning_ratio=heat.pruning_ratio,
                clustering_depth=info.average_depth,
                score=score))
        advice.sort(key=lambda a: (-a.score, a.table, a.column))
        return advice

    @staticmethod
    def _clustering_info(catalog: "Catalog", table: str, column: str):
        """Live overlap depth, or None when the table/column vanished
        between the telemetry window and now (dropped, renamed)."""
        try:
            schema = catalog.schema_of(table)
        except Exception:
            return None
        if column not in schema.names():
            return None
        return catalog.clustering_information(table, column)


def best_advice(records: Sequence["TelemetryRecord"],
                catalog: "Catalog",
                advisor: WorkloadAdvisor | None = None
                ) -> ClusteringAdvice | None:
    """Convenience: the single most urgent recommendation, if any."""
    advisor = advisor or WorkloadAdvisor()
    ranked = advisor.advise(records, catalog)
    return ranked[0] if ranked else None
