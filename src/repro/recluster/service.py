"""Background reclustering service for :class:`QueryService`.

Closes the telemetry loop end to end: the advisor mines the service's
own :class:`TelemetrySink` for hot, poorly-pruning filter columns, the
engine fixes the layout one budgeted slice at a time, and every slice
runs through the service's writer-preference lock — SELECT/DML traffic
continues between slices, sees only fully-committed layouts, and the
layout work yields to admission pressure instead of competing with it.

Observability mirrors the rest of the service layer: each slice
increments ``recluster_*`` metrics counters, appends one
``kind="recluster"`` telemetry record (so the fleet report can account
maintenance work separately from queries), optionally records a
``recluster:slice`` trace span, and ``describe()["reclustering"]``
exposes live job progress.
"""

from __future__ import annotations

import itertools
import threading
from typing import TYPE_CHECKING, Any

from ..obs.telemetry import TelemetryRecord
from .advisor import WorkloadAdvisor
from .engine import IncrementalReclusterer, ReclusterJob, SliceReport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs.trace import Tracer
    from ..service.server import QueryService

__all__ = ["ReclusterService"]

#: default max input bytes one slice may rewrite (bounds the exclusive
#: lock hold; at laptop scale partitions are a few KB each).
DEFAULT_BUDGET_BYTES = 256 * 1024

_SLICE_COUNTER = itertools.count(1)


class ReclusterService:
    """Advisor + engine + pause/resume loop over one QueryService.

    Drive it either synchronously — call :meth:`step` from a test or a
    benchmark until it returns ``None`` with no active job — or as a
    background daemon via :meth:`start`/:meth:`stop`. Both paths share
    the same logic; the thread only adds polling.
    """

    def __init__(self, service: "QueryService", *,
                 budget_bytes: int = DEFAULT_BUDGET_BYTES,
                 target_depth: float = 1.05,
                 max_slices_per_job: int = 256,
                 pause_queue_depth: int = 4,
                 poll_interval: float = 0.02,
                 advisor: WorkloadAdvisor | None = None,
                 tracer: "Tracer | None" = None):
        self.service = service
        self.advisor = advisor or WorkloadAdvisor()
        self.engine = IncrementalReclusterer(service.catalog)
        self.budget_bytes = budget_bytes
        self.target_depth = target_depth
        self.max_slices_per_job = max_slices_per_job
        #: queued statements at or above which the loop yields
        self.pause_queue_depth = pause_queue_depth
        self.poll_interval = poll_interval
        self.tracer = tracer
        self._lock = threading.Lock()
        self._job: ReclusterJob | None = None
        self._paused = False
        self._paused_for_pressure = False
        self._last_report: SliceReport | None = None
        self._completed: list[dict[str, Any]] = []
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # -- control --------------------------------------------------------
    def pause(self) -> None:
        """Operator pause: no new slices until :meth:`resume`."""
        self._paused = True

    def resume(self) -> None:
        self._paused = False

    @property
    def paused(self) -> bool:
        return self._paused or self._paused_for_pressure

    def start(self) -> "ReclusterService":
        """Run :meth:`step` on a background daemon until stopped."""
        with self._lock:
            if self._thread is not None:
                return self
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="recluster-service",
                daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        with self._lock:
            thread = self._thread
            self._thread = None
        if thread is None:
            return
        self._stop.set()
        thread.join()

    def _loop(self) -> None:
        while not self._stop.is_set():
            report = self.step()
            if report is None:
                # Nothing actionable right now (paused, pressured, or
                # no advice): poll instead of spinning.
                self._stop.wait(self.poll_interval)

    # -- the state machine ----------------------------------------------
    def step(self) -> SliceReport | None:
        """Run at most one recluster slice; None when nothing ran.

        Order matters: manual pause beats pressure beats work. A slice
        runs under the service's exclusive table lock, so queued
        queries resume the moment the slice commits.
        """
        if self._paused:
            return None
        if self.service.pool.total_queued >= self.pause_queue_depth:
            if not self._paused_for_pressure:
                self._paused_for_pressure = True
                self.service.metrics.counter(
                    "recluster_pauses").inc()
            return None
        self._paused_for_pressure = False
        job = self._job
        if job is None:
            job = self._next_job()
            if job is None:
                return None
            self._job = job
        with self.service._table_lock.write():
            report = self._run_slice(job)
        self._account(job, report)
        return report

    def _next_job(self) -> ReclusterJob | None:
        """Ask the advisor for the most urgent table/key, if any."""
        ranked = self.advisor.advise(self.service.telemetry.records(),
                                     self.service.catalog)
        if not ranked:
            return None
        advice = ranked[0]
        self.service.metrics.counter("recluster_jobs_started").inc()
        return ReclusterJob(
            table=advice.table, keys=(advice.column,),
            budget_bytes=self.budget_bytes,
            target_depth=self.target_depth,
            max_slices=self.max_slices_per_job)

    def _run_slice(self, job: ReclusterJob) -> SliceReport:
        if self.tracer is None:
            return self.engine.run_slice(job)
        with self.tracer.span("recluster:slice", table=job.table,
                              keys=",".join(job.keys)) as span:
            report = self.engine.run_slice(job)
            span.annotate(
                partitions=report.partitions_selected,
                bytes=report.bytes_rewritten,
                depth_before=round(report.depth_before, 4),
                depth_after=round(report.depth_after, 4),
                done=report.done)
        return report

    def _account(self, job: ReclusterJob,
                 report: SliceReport) -> None:
        """Metrics + telemetry for one slice, and job completion."""
        self._last_report = report
        metrics = self.service.metrics
        if report.partitions_selected:
            metrics.counter("recluster_slices").inc()
            metrics.counter("recluster_partitions_rewritten").inc(
                report.partitions_selected)
            metrics.counter("recluster_bytes_rewritten").inc(
                report.bytes_rewritten)
            self.service.telemetry.record(TelemetryRecord(
                query_id=f"recluster-{next(_SLICE_COUNTER)}",
                sql=(f"RECLUSTER {job.table} BY "
                     f"{', '.join(job.keys)}"),
                kind="recluster", tables=(job.table,), status="ok",
                partitions_rewritten=report.partitions_selected,
                bytes_rewritten=report.bytes_rewritten))
        if report.done:
            metrics.counter("recluster_jobs_completed").inc()
            self._completed.append({
                "table": job.table,
                "keys": list(job.keys),
                "slices": job.slices,
                "partitions_rewritten": job.partitions_rewritten,
                "bytes_rewritten": job.bytes_rewritten,
                "reason": job.reason,
            })
            self._job = None

    # -- introspection --------------------------------------------------
    def status(self) -> dict[str, Any]:
        """Live snapshot for ``QueryService.describe()``."""
        job = self._job
        status: dict[str, Any] = {
            "running": self._thread is not None,
            "paused": self._paused,
            "paused_for_pressure": self._paused_for_pressure,
            "budget_bytes": self.budget_bytes,
            "active_job": None,
            "completed_jobs": list(self._completed),
        }
        if job is not None:
            status["active_job"] = {
                "table": job.table,
                "keys": list(job.keys),
                "slices": job.slices,
                "partitions_rewritten": job.partitions_rewritten,
                "bytes_rewritten": job.bytes_rewritten,
            }
        if self._last_report is not None:
            status["last_slice"] = self._last_report.to_dict()
        return status
