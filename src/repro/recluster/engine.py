"""Incremental, budgeted recluster engine.

``Catalog.recluster`` rewrites a whole table in one exclusive-lock
critical section — fine for experiments, hostile to a live service.
This engine instead improves layout *one bounded slice at a time*,
following the incremental scheme of "Workload-Aware Incremental
Reclustering in Cloud Data Warehouses" (PAPERS.md): each slice picks
the worst-overlapping partition neighbourhood (zone-map overlap depth
on the leading clustering key), rewrites only that subset sorted by
the keys, and commits through the catalog's existing
``_commit_rewrite``/WAL ``recluster`` path — so durability, predicate
-cache eviction, and result-cache invalidation behave exactly like
any other rewrite.

Budget semantics: a slice never selects more input partitions than fit
in ``budget_bytes`` (measured as the partitions' uncompressed size).
The budget bounds the exclusive-lock hold time and the WAL record
size; convergence comes from repetition, not from big slices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

from ..errors import SchemaError
from ..storage.builder import build_table
from ..storage.clustering import Layout, clustering_information

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..catalog import Catalog
    from ..storage.micropartition import MicroPartition

__all__ = ["ReclusterJob", "SliceReport", "IncrementalReclusterer"]

#: a slice that improves average depth by less than this counts as a
#: stall; two consecutive stalls end the job (guards against budgets
#: too small to merge a neighbourhood that no longer shrinks).
_MIN_IMPROVEMENT = 1e-9
_MAX_STALLS = 2


@dataclass
class ReclusterJob:
    """Mutable state of one table's incremental recluster."""

    table: str
    keys: tuple[str, ...]
    #: max summed input-partition bytes one slice may rewrite
    budget_bytes: int
    #: stop once average overlap depth on the leading key reaches this
    target_depth: float = 1.05
    #: hard slice-count ceiling (safety valve, not the usual exit)
    max_slices: int = 256
    slices: int = 0
    partitions_rewritten: int = 0
    bytes_rewritten: int = 0
    done: bool = False
    reason: str = ""
    _stalls: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if not self.keys:
            raise SchemaError("recluster job requires at least one key")
        if self.budget_bytes <= 0:
            raise SchemaError("budget_bytes must be positive")
        self.keys = tuple(k.lower() for k in self.keys)


@dataclass(frozen=True)
class SliceReport:
    """What one ``run_slice`` call did (one exclusive-lock hold)."""

    table: str
    keys: tuple[str, ...]
    #: input partitions selected and rewritten this slice
    partitions_selected: int
    #: partitions the rewrite produced
    partitions_written: int
    #: summed input bytes this slice rewrote (<= budget_bytes)
    bytes_rewritten: int
    depth_before: float
    depth_after: float
    done: bool
    reason: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "table": self.table,
            "keys": list(self.keys),
            "partitions_selected": self.partitions_selected,
            "partitions_written": self.partitions_written,
            "bytes_rewritten": self.bytes_rewritten,
            "depth_before": round(self.depth_before, 4),
            "depth_after": round(self.depth_after, 4),
            "done": self.done,
            "reason": self.reason,
        }


class IncrementalReclusterer:
    """Runs budgeted recluster slices against one catalog.

    The caller owns concurrency control: ``run_slice`` mutates the
    table through ``Catalog._commit_rewrite`` and must run under
    whatever exclusive lock protects DML (the service holds its
    writer-preference lock around each slice).
    """

    def __init__(self, catalog: "Catalog"):
        self.catalog = catalog

    # -- slice selection ------------------------------------------------
    @staticmethod
    def _key_ranges(partitions: Sequence["MicroPartition"],
                    key: str) -> list[tuple[int, Any, Any]]:
        """(index, lo, hi) zone-map ranges on ``key``; partitions with
        no usable stats (all-NULL) are skipped — reordering cannot
        tighten a range that does not exist."""
        ranges = []
        for i, partition in enumerate(partitions):
            stats = partition.zone_map.stats(key)
            if stats.min_value is not None:
                ranges.append((i, stats.min_value, stats.max_value))
        return ranges

    @staticmethod
    def _depths(ranges: Sequence[tuple[int, Any, Any]]) -> list[int]:
        """Overlap depth (self included) per entry of ``ranges``."""
        return [
            1 + sum(1 for j, (_, lo_j, hi_j) in enumerate(ranges)
                    if i != j and lo_i <= hi_j and lo_j <= hi_i)
            for i, (_, lo_i, hi_i) in enumerate(ranges)
        ]

    def _select_slice(self, partitions: Sequence["MicroPartition"],
                      key: str, budget_bytes: int
                      ) -> list["MicroPartition"]:
        """The worst-overlapping neighbourhood that fits the budget.

        Seeds on the deepest partition, gathers every partition whose
        range intersects the seed's, and greedily admits them —
        deepest first, smaller first among equals — while the summed
        input bytes stay within budget. Fewer than two admitted
        partitions means no merge is possible under this budget.
        """
        ranges = self._key_ranges(partitions, key)
        if len(ranges) < 2:
            return []
        depths = self._depths(ranges)
        deepest = max(range(len(ranges)), key=depths.__getitem__)
        if depths[deepest] <= 1:
            return []
        _, seed_lo, seed_hi = ranges[deepest]
        neighbourhood = [
            (pos, ranges[pos][0]) for pos in range(len(ranges))
            if ranges[pos][1] <= seed_hi and seed_lo <= ranges[pos][2]
        ]
        neighbourhood.sort(
            key=lambda e: (-depths[e[0]],
                           partitions[e[1]].nbytes(),
                           e[1]))
        selected: list["MicroPartition"] = []
        spent = 0
        for _, index in neighbourhood:
            nbytes = partitions[index].nbytes()
            if spent + nbytes > budget_bytes:
                continue
            selected.append(partitions[index])
            spent += nbytes
        return selected if len(selected) >= 2 else []

    # -- slice execution ------------------------------------------------
    def run_slice(self, job: ReclusterJob) -> SliceReport:
        """Select, rewrite, and commit one budgeted slice.

        Returns a report; sets ``job.done`` when the table converged,
        the budget cannot make further progress, or the slice ceiling
        was hit. A done job performs no rewrite on subsequent calls.
        """
        catalog = self.catalog
        table = catalog._table(job.table)
        key = job.keys[0]
        if key not in table.schema.names():
            raise SchemaError(
                f"unknown clustering key {key!r} for table "
                f"{job.table!r}")

        def depth() -> float:
            return clustering_information(table.partitions,
                                          key).average_depth

        depth_before = depth()
        if job.done:
            return self._report(job, 0, 0, 0, depth_before,
                                depth_before)
        if depth_before <= job.target_depth:
            return self._finish(job, "converged", depth_before)
        if job.slices >= job.max_slices:
            return self._finish(job, "slice limit reached",
                                depth_before)
        selected = self._select_slice(table.partitions, key,
                                      job.budget_bytes)
        if not selected:
            return self._finish(job, "budget too small to merge "
                                "overlapping partitions", depth_before)
        slice_bytes = sum(p.nbytes() for p in selected)
        rows: list[Sequence[Any]] = []
        for partition in selected:
            rows.extend(partition.to_rows())
        rebuilt = build_table(
            table.name, table.schema, rows,
            rows_per_partition=catalog.rows_per_partition,
            layout=Layout.sorted_by(*job.keys))
        catalog._commit_rewrite(table, selected, rebuilt.partitions,
                                kind="recluster")
        job.slices += 1
        job.partitions_rewritten += len(selected)
        job.bytes_rewritten += slice_bytes
        depth_after = depth()
        if depth_after <= job.target_depth:
            return self._finish(job, "converged", depth_before,
                                depth_after, selected, rebuilt,
                                slice_bytes)
        if depth_before - depth_after < _MIN_IMPROVEMENT:
            job._stalls += 1
            if job._stalls >= _MAX_STALLS:
                return self._finish(job, "stalled (budget cannot "
                                    "improve depth further)",
                                    depth_before, depth_after,
                                    selected, rebuilt, slice_bytes)
        else:
            job._stalls = 0
        if job.slices >= job.max_slices:
            return self._finish(job, "slice limit reached",
                                depth_before, depth_after, selected,
                                rebuilt, slice_bytes)
        return self._report(job, len(selected),
                            len(rebuilt.partitions), slice_bytes,
                            depth_before, depth_after)

    def _finish(self, job: ReclusterJob, reason: str,
                depth_before: float, depth_after: float | None = None,
                selected: Sequence | None = None, rebuilt=None,
                slice_bytes: int = 0) -> SliceReport:
        job.done = True
        job.reason = reason
        return self._report(
            job,
            len(selected) if selected is not None else 0,
            len(rebuilt.partitions) if rebuilt is not None else 0,
            slice_bytes, depth_before,
            depth_after if depth_after is not None else depth_before)

    def _report(self, job: ReclusterJob, selected: int, written: int,
                slice_bytes: int, depth_before: float,
                depth_after: float) -> SliceReport:
        return SliceReport(
            table=job.table, keys=job.keys,
            partitions_selected=selected, partitions_written=written,
            bytes_rewritten=slice_bytes, depth_before=depth_before,
            depth_after=depth_after, done=job.done, reason=job.reason)
