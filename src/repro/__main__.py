"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo "<SQL>"`` — run a query against a built-in demo dataset and
  show the result plus its pruning profile (``--explain`` for the
  annotated plan).
* ``sql <catalog-dir> "<SQL>"`` — run a query against a catalog saved
  with :meth:`repro.Catalog.save`.
* ``tpch`` — print the per-query TPC-H pruning ratios (Figure 13).
* ``workload`` — run the calibrated synthetic workload and print the
  platform-level pruning statistics (Figures 1/11).
"""

from __future__ import annotations

import argparse
import sys

from . import Catalog, DataType, Layout, Schema


def _build_demo_catalog(seed: int) -> Catalog:
    import random

    rng = random.Random(seed)
    catalog = Catalog(rows_per_partition=1000)
    schema = Schema.of(
        ts=DataType.INTEGER,
        region=DataType.VARCHAR,
        amount=DataType.INTEGER,
        fk=DataType.INTEGER,
    )
    rows = [(i, rng.choice(["emea", "amer", "apac"]),
             rng.randrange(100_000), i // 100)
            for i in range(100_000)]
    catalog.create_table_from_rows("orders", schema, rows,
                                   layout=Layout.sorted_by("ts"))
    dim = Schema.of(key=DataType.INTEGER, name=DataType.VARCHAR)
    catalog.create_table_from_rows(
        "customers", dim, [(k, f"customer{k}") for k in range(1000)])
    return catalog


def _print_result(result, max_rows: int) -> None:
    print(f"columns: {result.schema.names()}")
    for row in result.rows[:max_rows]:
        print(f"  {row}")
    if result.num_rows > max_rows:
        print(f"  ... ({result.num_rows} rows total)")
    print()
    print(result.profile.pruning_summary())


def cmd_demo(args) -> int:
    catalog = _build_demo_catalog(args.seed)
    if args.explain:
        print(catalog.explain(args.query))
        return 0
    result = catalog.sql(args.query)
    _print_result(result, args.max_rows)
    return 0


def cmd_sql(args) -> int:
    catalog = Catalog.load(args.catalog)
    if args.explain:
        print(catalog.explain(args.query))
        return 0
    result = catalog.sql(args.query)
    _print_result(result, args.max_rows)
    return 0


def cmd_tpch(args) -> int:
    from .bench.reporting import format_table
    from .workload.tpch import (
        TpchConfig,
        build_tpch,
        measure_query_pruning,
        tpch_queries,
    )

    catalog = build_tpch(TpchConfig(orders_count=args.orders,
                                    cluster=not args.no_cluster))
    rows = []
    ratios = []
    for query in tpch_queries():
        total, pruned = measure_query_pruning(catalog, query)
        ratio = pruned / total if total else 0.0
        ratios.append(ratio)
        rows.append([f"Q{query.number:02d}", total, pruned,
                     f"{ratio:.1%}"])
    print(format_table(["query", "partitions", "pruned", "ratio"],
                       rows))
    import statistics

    print(f"\naverage {sum(ratios) / len(ratios):.1%}, "
          f"median {statistics.median(ratios):.1%} "
          f"(paper: 28.7% / 8.3%)")
    return 0


def cmd_workload(args) -> int:
    from .pruning.flow import PruningFlow
    from .workload import Platform, PlatformConfig, WorkloadGenerator

    platform = Platform(PlatformConfig(seed=args.seed,
                                       n_xlarge_tables=1))
    generator = WorkloadGenerator(platform, seed=args.seed + 1)
    flow = PruningFlow()
    for query in generator.generate(args.queries):
        result = platform.catalog.sql(query.sql)
        flow.add(result.profile.flow_record())
    print(f"queries executed: {len(flow)}")
    print(f"platform-wide partitions pruned: "
          f"{flow.platform_pruning_ratio():.1%} (paper: 99.4%)")
    print("technique applied (share of queries):")
    for technique, share in flow.technique_shares().items():
        print(f"  {technique:8s} {share:.1%}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Pruning-in-Snowflake reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="query the built-in demo data")
    demo.add_argument("query")
    demo.add_argument("--explain", action="store_true")
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument("--max-rows", type=int, default=20)
    demo.set_defaults(func=cmd_demo)

    sql = sub.add_parser("sql", help="query a saved catalog")
    sql.add_argument("catalog")
    sql.add_argument("query")
    sql.add_argument("--explain", action="store_true")
    sql.add_argument("--max-rows", type=int, default=20)
    sql.set_defaults(func=cmd_sql)

    tpch = sub.add_parser("tpch", help="TPC-H pruning ratios (Fig 13)")
    tpch.add_argument("--orders", type=int, default=4000)
    tpch.add_argument("--no-cluster", action="store_true")
    tpch.set_defaults(func=cmd_tpch)

    workload = sub.add_parser(
        "workload", help="run the calibrated synthetic workload")
    workload.add_argument("--queries", type=int, default=300)
    workload.add_argument("--seed", type=int, default=0)
    workload.set_defaults(func=cmd_workload)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
