"""SQL type system shared by storage, expressions, and the planner.

The engine supports a compact but realistic set of SQL types:

* ``INTEGER`` — 64-bit signed integers,
* ``DOUBLE``  — IEEE-754 doubles,
* ``VARCHAR`` — unicode strings,
* ``BOOLEAN`` — SQL booleans,
* ``DATE``    — calendar dates, stored as days since 1970-01-01.

SQL ``NULL`` is represented out-of-band by null masks (see
:mod:`repro.storage.column`); scalar Python ``None`` stands for NULL at
API boundaries.
"""

from __future__ import annotations

import datetime
import enum
from dataclasses import dataclass
from typing import Any, Iterable

import numpy as np

from .errors import SchemaError, TypeMismatchError

_EPOCH = datetime.date(1970, 1, 1)


class DataType(enum.Enum):
    """SQL data types supported by the engine."""

    INTEGER = "INTEGER"
    DOUBLE = "DOUBLE"
    VARCHAR = "VARCHAR"
    BOOLEAN = "BOOLEAN"
    DATE = "DATE"

    @property
    def is_numeric(self) -> bool:
        """Whether arithmetic applies (INTEGER or DOUBLE)."""
        return self in (DataType.INTEGER, DataType.DOUBLE)

    @property
    def is_orderable(self) -> bool:
        """Whether values of this type support ``<`` ordering (all do)."""
        return True

    def numpy_dtype(self) -> np.dtype:
        """The numpy storage dtype backing a column of this type."""
        return _NUMPY_DTYPES[self]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DataType.{self.name}"


_NUMPY_DTYPES = {
    DataType.INTEGER: np.dtype(np.int64),
    DataType.DOUBLE: np.dtype(np.float64),
    DataType.VARCHAR: np.dtype(object),
    DataType.BOOLEAN: np.dtype(np.bool_),
    DataType.DATE: np.dtype(np.int64),
}


def date_to_days(value: datetime.date) -> int:
    """Convert a ``datetime.date`` to its internal days-since-epoch form."""
    return (value - _EPOCH).days


def days_to_date(days: int) -> datetime.date:
    """Convert internal days-since-epoch back to a ``datetime.date``."""
    return _EPOCH + datetime.timedelta(days=int(days))


def infer_type(value: Any) -> DataType:
    """Infer the SQL type of a Python scalar.

    Raises:
        TypeMismatchError: if the value has no SQL equivalent.
    """
    if isinstance(value, bool) or isinstance(value, np.bool_):
        return DataType.BOOLEAN
    if isinstance(value, (int, np.integer)):
        return DataType.INTEGER
    if isinstance(value, (float, np.floating)):
        return DataType.DOUBLE
    if isinstance(value, str):
        return DataType.VARCHAR
    if isinstance(value, datetime.date):
        return DataType.DATE
    raise TypeMismatchError(f"no SQL type for Python value {value!r}")


def common_numeric_type(left: DataType, right: DataType) -> DataType:
    """Numeric type promotion: INTEGER op DOUBLE -> DOUBLE.

    Raises:
        TypeMismatchError: if either side is not numeric.
    """
    if not (left.is_numeric and right.is_numeric):
        raise TypeMismatchError(
            f"expected numeric types, got {left.value} and {right.value}"
        )
    if DataType.DOUBLE in (left, right):
        return DataType.DOUBLE
    return DataType.INTEGER


def comparable(left: DataType, right: DataType) -> bool:
    """Whether values of the two types may be compared with =, <, etc."""
    if left == right:
        return True
    return left.is_numeric and right.is_numeric


@dataclass(frozen=True)
class Field:
    """A named, typed column in a schema."""

    name: str
    dtype: DataType

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("field name must be non-empty")


class Schema:
    """An ordered collection of fields with case-insensitive name lookup.

    Column names are normalized to lower case, mirroring how SQL
    identifiers behave in most engines.
    """

    def __init__(self, fields: Iterable[Field]):
        self.fields: tuple[Field, ...] = tuple(
            Field(f.name.lower(), f.dtype) for f in fields
        )
        self._index: dict[str, int] = {}
        for i, field in enumerate(self.fields):
            if field.name in self._index:
                raise SchemaError(f"duplicate column name {field.name!r}")
            self._index[field.name] = i

    @classmethod
    def of(cls, **columns: DataType) -> "Schema":
        """Convenience constructor: ``Schema.of(a=DataType.INTEGER, ...)``."""
        return cls(Field(name, dtype) for name, dtype in columns.items())

    def __len__(self) -> int:
        return len(self.fields)

    def __iter__(self):
        return iter(self.fields)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._index

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.fields == other.fields

    def __hash__(self) -> int:
        return hash(self.fields)

    def names(self) -> list[str]:
        """Column names in schema order."""
        return [f.name for f in self.fields]

    def index_of(self, name: str) -> int:
        """Position of a column, raising :class:`SchemaError` if absent."""
        try:
            return self._index[name.lower()]
        except KeyError:
            raise SchemaError(
                f"unknown column {name!r}; available: {self.names()}"
            ) from None

    def field(self, name: str) -> Field:
        """The named field (case-insensitive)."""
        return self.fields[self.index_of(name)]

    def dtype_of(self, name: str) -> DataType:
        """The named column's SQL type."""
        return self.field(name).dtype

    def select(self, names: Iterable[str]) -> "Schema":
        """A new schema containing only the given columns, in order."""
        return Schema(self.field(n) for n in names)

    def concat(self, other: "Schema") -> "Schema":
        """Concatenate two schemas (used by joins); names must not clash."""
        return Schema(list(self.fields) + list(other.fields))

    def __repr__(self) -> str:
        inner = ", ".join(f"{f.name} {f.dtype.value}" for f in self.fields)
        return f"Schema({inner})"
