"""Warehouse-local micro-partition data cache (paper §2).

In the paper's disaggregated architecture, warehouses "cache table
data on local storage" so that pruning and caching *jointly* determine
how many bytes actually cross the network: pruning shrinks the scan
set, the local cache absorbs the repeated fraction of what remains.
:class:`PartitionCache` models that local SSD cache:

* **Byte budget** — entries are charged by the bytes they keep
  resident (column-subset aware: a scan that only read two columns
  only charges those two columns' bytes), and the total never exceeds
  ``budget_bytes``.
* **Segmented LRU** — new entries enter a *probation* segment; a
  re-reference promotes them to the *protected* segment (capped at
  ``protected_fraction`` of the budget, overflow demotes back to
  probation). One-shot scans therefore wash through probation without
  evicting the hot working set.
* **Keyed by (partition_id, checksum)** — micro-partitions are
  immutable and DML/recluster rewrites always mint fresh ids (the
  storage layer enforces id uniqueness), so a resident entry can only
  go stale by a partition being *unregistered*. The cache subscribes
  to :meth:`~repro.storage.metadata_store.MetadataStore.unregister`
  via :meth:`attach`, and additionally refuses to serve an entry whose
  recorded checksum mismatches a caller-supplied expectation.
* **Failure hygiene** — the cache is only populated by callers that
  hold a successfully loaded, checksum-verified partition; corrupt or
  unavailable loads raise before :meth:`put` and never pollute it.

The cache is shared by all queries of one warehouse cluster and is
safe to use from concurrent scan (morsel / prefetch) threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..storage.metadata_store import MetadataStore
    from ..storage.micropartition import MicroPartition

__all__ = ["CacheStats", "PartitionCache"]

#: resident-set segments, in eviction order
_PROBATION = "probation"
_PROTECTED = "protected"


@dataclass
class CacheStats:
    """Point-in-time counters of one :class:`PartitionCache`."""

    hits: int = 0
    misses: int = 0
    bytes_saved: int = 0
    prefetch_loads: int = 0
    evictions: int = 0
    invalidations: int = 0
    rejected: int = 0
    resident_bytes: int = 0
    entries: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """hits / (hits + misses); 0.0 before any traffic."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": round(self.hit_ratio, 6),
            "bytes_saved": self.bytes_saved,
            "prefetch_loads": self.prefetch_loads,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "rejected": self.rejected,
            "resident_bytes": self.resident_bytes,
            "entries": self.entries,
        }


class _Entry:
    """One resident partition: the object plus its byte accounting."""

    __slots__ = ("partition", "checksum", "columns", "nbytes", "hits",
                 "segment")

    def __init__(self, partition: "MicroPartition",
                 columns: frozenset[str] | None, nbytes: int):
        self.partition = partition
        self.checksum = partition.checksum
        #: resident column subset; ``None`` = every column is resident
        self.columns = columns
        #: bytes charged against the budget for the resident columns
        self.nbytes = nbytes
        self.hits = 0
        self.segment = _PROBATION

    def covers(self, columns: Sequence[str] | None) -> bool:
        if self.columns is None:
            return True
        if columns is None:
            return False
        return {c.lower() for c in columns} <= self.columns


class PartitionCache:
    """Byte-budget segmented-LRU cache of immutable micro-partitions."""

    def __init__(self, budget_bytes: int, *,
                 protected_fraction: float = 0.8,
                 prefetch: bool = True,
                 prefetch_workers: int = 2,
                 name: str = "data-cache"):
        if budget_bytes <= 0:
            raise ValueError("cache budget must be positive")
        if not 0.0 <= protected_fraction <= 1.0:
            raise ValueError("protected_fraction must be in [0, 1]")
        self.budget_bytes = budget_bytes
        self.protected_budget = int(budget_bytes * protected_fraction)
        self.name = name
        #: scans may run an async readahead over this cache
        #: (see :class:`~repro.cache.prefetcher.Prefetcher`).
        self.prefetch = prefetch
        self.prefetch_workers = max(1, prefetch_workers)
        self._lock = threading.RLock()
        # Both segments are OrderedDicts in LRU -> MRU order; an entry
        # lives in exactly one of them (entry.segment says which).
        self._segments: dict[str, OrderedDict[int, _Entry]] = {
            _PROBATION: OrderedDict(),
            _PROTECTED: OrderedDict(),
        }
        self._resident_bytes = 0
        self._stats = CacheStats()
        self._metadata: "MetadataStore | None" = None

    # ------------------------------------------------------------------
    # Lookup / populate
    # ------------------------------------------------------------------
    def get(self, partition_id: int,
            columns: Sequence[str] | None = None,
            expected_checksum: int | None = None,
            record: bool = True) -> "MicroPartition | None":
        """The resident partition, or ``None`` on a miss.

        A hit requires the resident entry to cover the requested
        ``columns`` (a partial entry stays resident — the following
        :meth:`put` widens it) and, when ``expected_checksum`` is
        given, to match it (a mismatch invalidates the entry: the id
        was reused for different content, which the storage layer
        normally makes impossible). ``record=False`` skips hit/miss
        accounting (used by prefetch consumption, where the bytes were
        read from storage moments ago and nothing was saved).
        """
        with self._lock:
            entry = self._find(partition_id)
            if entry is not None and expected_checksum is not None \
                    and entry.checksum != expected_checksum:
                self._drop(partition_id, entry)
                self._stats.invalidations += 1
                entry = None
            if entry is None or not entry.covers(columns):
                if record:
                    self._stats.misses += 1
                return None
            entry.hits += 1
            self._touch(partition_id, entry)
            if record:
                saved = (entry.partition.project_bytes(columns)
                         if columns is not None
                         else entry.partition.nbytes())
                self._stats.hits += 1
                self._stats.bytes_saved += saved
            return entry.partition

    def record_miss(self) -> None:
        """Account a demand lookup that the caller resolved elsewhere
        (e.g. consumption of a partition this scan just prefetched)."""
        with self._lock:
            self._stats.misses += 1

    def record_prefetch_load(self) -> None:
        """Account one background readahead fetch."""
        with self._lock:
            self._stats.prefetch_loads += 1

    def put(self, partition: "MicroPartition",
            columns: Sequence[str] | None = None) -> list[int]:
        """Admit (or widen) a successfully loaded partition.

        ``columns`` names the column subset the caller actually read;
        only those columns' bytes are charged. A later put with more
        columns widens the resident set and re-charges. Returns the
        partition ids evicted to make room (for ``cache:evict`` trace
        events).
        """
        requested = (frozenset(c.lower() for c in columns)
                     if columns is not None else None)
        with self._lock:
            entry = self._find(partition.partition_id)
            if entry is not None and entry.checksum != partition.checksum:
                # Id reuse with different content: never serve the old
                # bytes again.
                self._drop(partition.partition_id, entry)
                self._stats.invalidations += 1
                entry = None
            if entry is not None:
                if requested is not None and entry.columns is not None:
                    widened = entry.columns | requested
                else:
                    widened = None
                nbytes = self._charge_bytes(partition, widened)
                if nbytes > self.budget_bytes:
                    # The widened entry can never fit; drop it rather
                    # than thrash the rest of the resident set.
                    self._drop(partition.partition_id, entry)
                    self._stats.rejected += 1
                    return []
                self._resident_bytes += nbytes - entry.nbytes
                entry.columns = widened
                entry.nbytes = nbytes
                entry.partition = partition
                self._touch(partition.partition_id, entry)
                return self._evict_to_budget()
            nbytes = self._charge_bytes(partition, requested)
            if nbytes > self.budget_bytes:
                self._stats.rejected += 1
                return []
            entry = _Entry(partition, requested, nbytes)
            self._segments[_PROBATION][partition.partition_id] = entry
            self._resident_bytes += nbytes
            return self._evict_to_budget()

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def invalidate(self, partition_id: int) -> bool:
        """Drop one partition (stale after a rewrite); True if resident."""
        with self._lock:
            entry = self._find(partition_id)
            if entry is None:
                return False
            self._drop(partition_id, entry)
            self._stats.invalidations += 1
            return True

    def invalidate_many(self, partition_ids: Iterable[int]) -> int:
        return sum(1 for pid in partition_ids if self.invalidate(pid))

    def clear(self) -> None:
        with self._lock:
            for segment in self._segments.values():
                segment.clear()
            self._resident_bytes = 0

    # ------------------------------------------------------------------
    # Metadata-store wiring
    # ------------------------------------------------------------------
    def attach(self, metadata: "MetadataStore") -> "PartitionCache":
        """Subscribe to unregister events: any partition whose metadata
        is removed (DML rewrite, recluster, DROP TABLE) is invalidated
        here automatically. Returns self for chaining."""
        if self._metadata is not None:
            raise ValueError(f"{self.name} is already attached")
        metadata.add_invalidation_listener(self._on_unregister)
        self._metadata = metadata
        return self

    def close(self) -> None:
        """Detach from the metadata store and drop all entries
        (cluster scale-in)."""
        if self._metadata is not None:
            self._metadata.remove_invalidation_listener(
                self._on_unregister)
            self._metadata = None
        self.clear()

    def _on_unregister(self, table: str, partition_id: int) -> None:
        self.invalidate(partition_id)

    # ------------------------------------------------------------------
    # Warm-up (cluster scale-out)
    # ------------------------------------------------------------------
    def warm_from(self, other: "PartitionCache") -> int:
        """Copy the hottest entries of ``other`` into this cache until
        the budget is full (protected segment first, MRU first).
        Returns the number of entries copied."""
        with other._lock:
            donors: list[_Entry] = []
            for segment in (_PROTECTED, _PROBATION):
                donors.extend(reversed(
                    other._segments[segment].values()))
        copied = 0
        for entry in donors:
            with self._lock:
                if self._resident_bytes + entry.nbytes \
                        > self.budget_bytes:
                    continue
                if self._find(entry.partition.partition_id) is not None:
                    continue
                clone = _Entry(entry.partition, entry.columns,
                               entry.nbytes)
                self._segments[_PROBATION][
                    entry.partition.partition_id] = clone
                self._resident_bytes += entry.nbytes
                copied += 1
        return copied

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def resident_bytes(self) -> int:
        with self._lock:
            return self._resident_bytes

    @property
    def hit_ratio(self) -> float:
        with self._lock:
            return self._stats.hit_ratio

    def __len__(self) -> int:
        with self._lock:
            return sum(len(s) for s in self._segments.values())

    def __contains__(self, partition_id: int) -> bool:
        with self._lock:
            return self._find(partition_id) is not None

    def stats(self) -> CacheStats:
        """A consistent copy of the counters."""
        with self._lock:
            snap = CacheStats(**{
                k: getattr(self._stats, k)
                for k in ("hits", "misses", "bytes_saved",
                          "prefetch_loads", "evictions",
                          "invalidations", "rejected")})
            snap.resident_bytes = self._resident_bytes
            snap.entries = sum(len(s)
                               for s in self._segments.values())
            return snap

    def segment_ids(self) -> dict[str, list[int]]:
        """Partition ids per segment in LRU -> MRU order (tests)."""
        with self._lock:
            return {name: list(segment)
                    for name, segment in self._segments.items()}

    def __repr__(self) -> str:
        snap = self.stats()
        return (f"PartitionCache({self.name}, "
                f"{snap.entries} entries, "
                f"{snap.resident_bytes}/{self.budget_bytes} bytes, "
                f"hit_ratio={snap.hit_ratio:.2f})")

    # ------------------------------------------------------------------
    # Internals (call with the lock held)
    # ------------------------------------------------------------------
    @staticmethod
    def _charge_bytes(partition: "MicroPartition",
                      columns: frozenset[str] | None) -> int:
        if columns is None:
            return partition.nbytes()
        return partition.project_bytes(sorted(columns))

    def _find(self, partition_id: int) -> _Entry | None:
        for segment in self._segments.values():
            entry = segment.get(partition_id)
            if entry is not None:
                return entry
        return None

    def _drop(self, partition_id: int, entry: _Entry) -> None:
        del self._segments[entry.segment][partition_id]
        self._resident_bytes -= entry.nbytes

    def _touch(self, partition_id: int, entry: _Entry) -> None:
        """Re-reference: promote probation hits, refresh protected."""
        if entry.segment == _PROTECTED:
            self._segments[_PROTECTED].move_to_end(partition_id)
            return
        del self._segments[_PROBATION][partition_id]
        entry.segment = _PROTECTED
        self._segments[_PROTECTED][partition_id] = entry
        self._shrink_protected()

    def _shrink_protected(self) -> None:
        """Demote protected LRU entries while over the segment cap."""
        protected = self._segments[_PROTECTED]
        while len(protected) > 1 and self._protected_bytes() \
                > self.protected_budget:
            pid, entry = next(iter(protected.items()))
            del protected[pid]
            entry.segment = _PROBATION
            self._segments[_PROBATION][pid] = entry

    def _protected_bytes(self) -> int:
        return sum(e.nbytes
                   for e in self._segments[_PROTECTED].values())

    def _evict_to_budget(self) -> list[int]:
        """Evict LRU entries (probation first) until within budget."""
        evicted: list[int] = []
        while self._resident_bytes > self.budget_bytes:
            for segment_name in (_PROBATION, _PROTECTED):
                segment = self._segments[segment_name]
                if segment:
                    pid, entry = next(iter(segment.items()))
                    self._drop(pid, entry)
                    self._stats.evictions += 1
                    evicted.append(pid)
                    break
            else:  # pragma: no cover - both segments empty
                break
        return evicted
