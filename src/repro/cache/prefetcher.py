"""Async readahead over a post-pruning scan set.

The paper's scan pipeline knows the full (pruned) scan-set order
before it loads the first byte, so a warehouse can overlap object-store
fetches with downstream work. :class:`Prefetcher` models that: a small
thread pool walks the scan-set order ahead of the consumer, keeping at
most ``window`` partitions in flight, and deposits successful loads
into the shared :class:`~repro.cache.partition_cache.PartitionCache`.

Runtime pruners (top-k boundaries, deferred join/filter verdicts) are
no obstacle to readahead because their decisions are *monotone*: a
partition the boundary prunes now stays pruned forever. The scan
passes a ``should_fetch`` re-validation callback; each partition is
re-checked against the current boundary at fetch-issue time, and a
partition that tightening later proves useless is surrendered via
:meth:`drop` — the scan counts those bytes as prefetched-then-skipped
instead of charging them to the query.

Failure hygiene: the prefetcher *never* surfaces or caches a failed
load. A fetch that raises (transient fault, corruption, unavailable
partition) is swallowed; the consumer's demand load re-attempts it
with the query's own retry budget and raises the typed error at the
correct position in the scan, exactly as an unprefetched scan would.
Prefetch fetches use a zero-retry policy so background readahead never
burns the query's retry budget or doubles fault-injector accesses for
partitions the demand path will retry anyway.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import TYPE_CHECKING, Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..storage.micropartition import MicroPartition
    from ..storage.storage_layer import StorageLayer
    from .partition_cache import PartitionCache

__all__ = ["Prefetcher"]


class Prefetcher:
    """Bounded readahead of one scan's partition order into the cache."""

    def __init__(self, cache: "PartitionCache", storage: "StorageLayer",
                 order: Sequence[int], *,
                 columns: Sequence[str] | None = None,
                 window: int = 4, workers: int | None = None,
                 should_fetch: Callable[[int], bool] | None = None):
        self._cache = cache
        self._storage = storage
        self._order = list(order)
        self._columns = list(columns) if columns is not None else None
        self._window = max(1, window)
        #: claim-time re-validation hook: called once per partition as
        #: its fetch is about to be issued; False skips the fetch
        #: entirely (sound for monotone pruners — a skip never
        #: un-skips). Runs on the consumer thread (claim/drop refills).
        self._should_fetch = should_fetch
        self._lock = threading.Lock()
        self._futures: dict[int, Future] = {}
        self._next = 0
        self._closed = False
        #: fetches suppressed by ``should_fetch`` (never issued).
        self.suppressed = 0
        self._pool = ThreadPoolExecutor(
            max_workers=workers or cache.prefetch_workers,
            thread_name_prefix="prefetch")
        self._fill()

    # ------------------------------------------------------------------
    def claim(self, partition_id: int) -> bool:
        """Wait for any in-flight fetch of ``partition_id`` and top up
        the readahead window. True if this prefetcher fetched it into
        the cache (the consumer found it resident *because of* the
        readahead, i.e. bytes were read from storage this query)."""
        with self._lock:
            future = self._futures.pop(partition_id, None)
        fetched = False
        if future is not None:
            fetched = future.result() is not None
        self._fill()
        return fetched

    def drop(self, partition_id: int) -> tuple[int, int]:
        """Surrender a partition the scan decided not to consume.

        Returns ``(fetched, nbytes)``: ``(1, bytes read)`` when the
        readahead had already pulled the partition from storage —
        wasted work the scan surfaces as its prefetched-then-skipped
        counters — or ``(0, 0)`` when the fetch never ran (not yet
        issued, cancelled in the queue, suppressed, or failed). The
        fetched partition stays in the cache: it is a verified load
        and later queries may still want it.
        """
        with self._lock:
            future = self._futures.pop(partition_id, None)
        dropped = (0, 0)
        if future is not None and not future.cancel():
            try:
                nbytes = future.result()
            except Exception:  # pragma: no cover - _fetch never raises
                nbytes = None
            if nbytes is not None:
                dropped = (1, nbytes)
        self._fill()
        return dropped

    def close(self) -> None:
        """Stop issuing fetches and release the pool (in-flight fetches
        finish in the background; their results still land in the
        cache, which is correct — they are verified loads)."""
        with self._lock:
            self._closed = True
            self._futures.clear()
        self._pool.shutdown(wait=False)

    # ------------------------------------------------------------------
    def _fill(self) -> None:
        with self._lock:
            if self._closed:
                return
            while len(self._futures) < self._window \
                    and self._next < len(self._order):
                pid = self._order[self._next]
                self._next += 1
                if pid in self._futures or pid in self._cache:
                    continue
                if self._should_fetch is not None \
                        and not self._should_fetch(pid):
                    self.suppressed += 1
                    continue
                self._futures[pid] = self._pool.submit(self._fetch, pid)

    def _fetch(self, partition_id: int) -> int | None:
        """Background load; deposits into the cache on success only.

        Returns the partition's projected byte size on success (what
        the readahead actually pulled over the wire), None on failure.
        """
        try:
            partition = self._storage.load(partition_id, retries=False)
        except Exception:
            # Leave the error for the demand path to re-raise with the
            # query's retry budget and typed-error reporting.
            return None
        self._cache.put(partition, self._columns)
        self._cache.record_prefetch_load()
        if self._columns is not None:
            return partition.project_bytes(self._columns)
        return partition.nbytes()
