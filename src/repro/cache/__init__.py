"""Warehouse-local data caching (paper §2).

:class:`PartitionCache` keeps recently scanned micro-partitions
resident under a byte budget (segmented LRU, column-subset-aware
accounting, metadata-driven invalidation); :class:`Prefetcher` walks a
pruned scan set ahead of the consumer to overlap storage fetches with
execution.
"""

from .partition_cache import CacheStats, PartitionCache
from .prefetcher import Prefetcher

__all__ = ["CacheStats", "PartitionCache", "Prefetcher"]
