"""Parquet-like files: row groups, pages, and page indexes (§8.1).

Apache Parquet follows a PAX layout with columnar metadata at row-group
level and optional page-level indexes. Both are optional in the wild —
"if a Parquet file contains metadata, Snowflake can immediately use it
for pruning. However, if there is no metadata, Snowflake can
reconstruct it by performing a full table scan" — which this module
models with ``write_statistics=False`` and :meth:`ParquetFile.backfill`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Sequence

from ..errors import MetadataError
from ..expr import ast
from ..expr.pruning import TriState, prune_partition
from ..storage.column import Column
from ..storage.zonemap import ZoneMap
from ..types import Schema

_FILE_IDS = itertools.count(1)

DEFAULT_PAGE_ROWS = 100
DEFAULT_ROW_GROUP_ROWS = 1000


@dataclass
class ParquetPage:
    """A page of one row group: a row range plus optional index stats."""

    row_offset: int
    row_count: int
    #: page-level column index (min/max per column), or None when the
    #: writer omitted the page index
    stats: ZoneMap | None


class ParquetRowGroup:
    """A row group: columnar data plus optional row-group statistics."""

    def __init__(self, schema: Schema, columns: dict[str, Column],
                 page_rows: int = DEFAULT_PAGE_ROWS,
                 write_statistics: bool = True,
                 write_page_index: bool = True):
        self.schema = schema
        self.columns = {name.lower(): col
                        for name, col in columns.items()}
        self.row_count = (len(next(iter(self.columns.values())))
                          if self.columns else 0)
        self.stats: ZoneMap | None = None
        self.pages: list[ParquetPage] = []
        if write_statistics:
            self.stats = ZoneMap.from_columns(self.columns)
        for offset in range(0, self.row_count, page_rows):
            end = min(offset + page_rows, self.row_count)
            page_stats = None
            if write_page_index:
                page_stats = ZoneMap.from_columns({
                    name: col.slice(offset, end)
                    for name, col in self.columns.items()})
            self.pages.append(ParquetPage(offset, end - offset,
                                          page_stats))

    def compute_statistics(self) -> ZoneMap:
        """Full-data statistics (used by backfill)."""
        return ZoneMap.from_columns(self.columns)

    def rows(self) -> list[tuple[Any, ...]]:
        cols = [self.columns[f.name].to_pylist() for f in self.schema]
        return list(zip(*cols)) if cols else []


class ParquetFile:
    """A file of row groups with optional footer statistics."""

    def __init__(self, schema: Schema,
                 row_groups: Sequence[ParquetRowGroup],
                 file_id: int | None = None):
        self.file_id = file_id if file_id is not None else next(_FILE_IDS)
        self.schema = schema
        self.row_groups = list(row_groups)

    @classmethod
    def write(cls, schema: Schema, rows: Sequence[Sequence[Any]],
              row_group_rows: int = DEFAULT_ROW_GROUP_ROWS,
              page_rows: int = DEFAULT_PAGE_ROWS,
              write_statistics: bool = True,
              write_page_index: bool = True) -> "ParquetFile":
        """Chunk rows into row groups and pages, like a Parquet writer."""
        groups = []
        for offset in range(0, len(rows), row_group_rows):
            chunk = rows[offset:offset + row_group_rows]
            columns = {
                f.name: Column.from_pylist(
                    f.dtype, [r[i] for r in chunk])
                for i, f in enumerate(schema)
            }
            groups.append(ParquetRowGroup(
                schema, columns, page_rows=page_rows,
                write_statistics=write_statistics,
                write_page_index=write_page_index))
        return cls(schema, groups)

    @property
    def row_count(self) -> int:
        return sum(g.row_count for g in self.row_groups)

    @property
    def has_statistics(self) -> bool:
        return all(g.stats is not None for g in self.row_groups)

    def file_stats(self) -> ZoneMap:
        """Footer-level metadata: the merge of all row-group stats.

        Raises:
            MetadataError: if any row group lacks statistics.
        """
        merged: ZoneMap | None = None
        for group in self.row_groups:
            if group.stats is None:
                raise MetadataError(
                    f"file {self.file_id} has row groups without "
                    "statistics; backfill first")
            merged = group.stats if merged is None \
                else merged.merge(group.stats)
        if merged is None:
            return ZoneMap(0, {})
        return merged

    def backfill(self) -> int:
        """Reconstruct missing row-group and page statistics (§8.1).

        Performs the equivalent of a full scan over groups lacking
        metadata. Returns the number of row groups backfilled.
        """
        backfilled = 0
        for group in self.row_groups:
            if group.stats is None:
                group.stats = group.compute_statistics()
                backfilled += 1
            for page in group.pages:
                if page.stats is None:
                    page.stats = ZoneMap.from_columns({
                        name: col.slice(page.row_offset,
                                        page.row_offset + page.row_count)
                        for name, col in group.columns.items()})
        return backfilled

    # ------------------------------------------------------------------
    # Pruning
    # ------------------------------------------------------------------
    def prune_row_groups(self, predicate: ast.Expr
                         ) -> list[ParquetRowGroup]:
        """Row groups that might contain matches (missing stats keep)."""
        kept = []
        for group in self.row_groups:
            if group.stats is None:
                kept.append(group)
                continue
            if prune_partition(predicate, group.stats,
                               self.schema) != TriState.NEVER:
                kept.append(group)
        return kept

    def prune_pages(self, group: ParquetRowGroup,
                    predicate: ast.Expr) -> list[ParquetPage]:
        """Pages of one row group that might contain matches."""
        kept = []
        for page in group.pages:
            if page.stats is None:
                kept.append(page)
                continue
            if prune_partition(predicate, page.stats,
                               self.schema) != TriState.NEVER:
                kept.append(page)
        return kept
