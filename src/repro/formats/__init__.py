"""Open table format simulation: Parquet-like files, Iceberg-like tables.

Implements the §8.1 metadata hierarchy — Iceberg manifest entries at
file level, Parquet row groups, and page-level indexes — with pruning
at every level and metadata *backfill* for files written without
statistics.
"""

from .parquet import ParquetFile, ParquetPage, ParquetRowGroup
from .iceberg import IcebergTable, ManifestEntry, IcebergScanPlan

__all__ = [
    "ParquetFile",
    "ParquetPage",
    "ParquetRowGroup",
    "IcebergTable",
    "ManifestEntry",
    "IcebergScanPlan",
]
