"""Iceberg-like tables: manifests with file-level metadata (§8.1).

An Iceberg table lists its data files in *manifest* entries that may
carry per-column bounds. Snowflake prunes hierarchically: manifest
(file) level first, then Parquet row-group level, then page level.
When manifests lack metadata it can be reconstructed from the Parquet
footers; when those are missing too, a full scan backfills everything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..errors import MetadataError
from ..expr import ast
from ..expr.pruning import TriState, prune_partition
from ..storage.zonemap import ZoneMap
from ..types import Schema
from .parquet import ParquetFile, ParquetPage, ParquetRowGroup


@dataclass
class ManifestEntry:
    """One data file tracked by the table manifest."""

    file: ParquetFile
    #: file-level column bounds, or None when the writer omitted them
    stats: ZoneMap | None


@dataclass
class IcebergScanPlan:
    """Result of hierarchical pruning over an Iceberg table."""

    total_files: int
    kept_files: list[ParquetFile]
    total_row_groups: int
    kept_row_groups: list[tuple[ParquetFile, ParquetRowGroup]]
    total_pages: int
    kept_pages: list[tuple[ParquetFile, ParquetRowGroup, ParquetPage]]

    @property
    def file_pruning_ratio(self) -> float:
        if self.total_files == 0:
            return 0.0
        return 1 - len(self.kept_files) / self.total_files

    @property
    def row_group_pruning_ratio(self) -> float:
        if self.total_row_groups == 0:
            return 0.0
        return 1 - len(self.kept_row_groups) / self.total_row_groups

    @property
    def page_pruning_ratio(self) -> float:
        if self.total_pages == 0:
            return 0.0
        return 1 - len(self.kept_pages) / self.total_pages


class IcebergTable:
    """A table manifest over Parquet files."""

    def __init__(self, name: str, schema: Schema,
                 entries: Sequence[ManifestEntry] = ()):
        self.name = name.lower()
        self.schema = schema
        self.entries: list[ManifestEntry] = list(entries)

    @classmethod
    def from_files(cls, name: str, schema: Schema,
                   files: Sequence[ParquetFile],
                   write_manifest_stats: bool = True) -> "IcebergTable":
        entries = []
        for file in files:
            stats = None
            if write_manifest_stats and file.has_statistics:
                stats = file.file_stats()
            entries.append(ManifestEntry(file, stats))
        return cls(name, schema, entries)

    def append(self, file: ParquetFile,
               with_stats: bool = True) -> None:
        stats = file.file_stats() if with_stats and \
            file.has_statistics else None
        self.entries.append(ManifestEntry(file, stats))

    @property
    def row_count(self) -> int:
        return sum(e.file.row_count for e in self.entries)

    # ------------------------------------------------------------------
    # Metadata maintenance
    # ------------------------------------------------------------------
    def backfill_manifest(self) -> int:
        """Reconstruct missing manifest stats from Parquet footers.

        Cheap path: only reads file metadata, not data. Entries whose
        files themselves lack statistics are skipped (use
        :meth:`backfill_files` first). Returns entries repaired.
        """
        repaired = 0
        for entry in self.entries:
            if entry.stats is None and entry.file.has_statistics:
                entry.stats = entry.file.file_stats()
                repaired += 1
        return repaired

    def backfill_files(self) -> int:
        """Full-scan reconstruction of missing Parquet statistics.

        Returns the number of row groups backfilled across all files.
        """
        return sum(entry.file.backfill() for entry in self.entries)

    def missing_metadata_report(self) -> dict[str, int]:
        """How much of the metadata hierarchy is missing."""
        files_missing = sum(1 for e in self.entries if e.stats is None)
        groups_missing = sum(
            1 for e in self.entries for g in e.file.row_groups
            if g.stats is None)
        pages_missing = sum(
            1 for e in self.entries for g in e.file.row_groups
            for p in g.pages if p.stats is None)
        return {
            "manifest_entries_missing": files_missing,
            "row_groups_missing": groups_missing,
            "pages_missing": pages_missing,
        }

    # ------------------------------------------------------------------
    # Hierarchical pruning
    # ------------------------------------------------------------------
    def plan_scan(self, predicate: ast.Expr | None) -> IcebergScanPlan:
        """Prune at file, row-group, and page level (§2.1 for Parquet)."""
        total_files = len(self.entries)
        total_row_groups = sum(len(e.file.row_groups)
                               for e in self.entries)
        total_pages = sum(len(g.pages) for e in self.entries
                          for g in e.file.row_groups)
        if predicate is None:
            kept_files = [e.file for e in self.entries]
            kept_groups = [(e.file, g) for e in self.entries
                           for g in e.file.row_groups]
            kept_pages = [(f, g, p) for f, g in kept_groups
                          for p in g.pages]
            return IcebergScanPlan(total_files, kept_files,
                                   total_row_groups, kept_groups,
                                   total_pages, kept_pages)
        kept_files = []
        for entry in self.entries:
            if entry.stats is not None and prune_partition(
                    predicate, entry.stats,
                    self.schema) == TriState.NEVER:
                continue
            kept_files.append(entry.file)
        kept_groups = []
        for file in kept_files:
            for group in file.prune_row_groups(predicate):
                kept_groups.append((file, group))
        kept_pages = []
        for file, group in kept_groups:
            for page in file.prune_pages(group, predicate):
                kept_pages.append((file, group, page))
        return IcebergScanPlan(total_files, kept_files,
                               total_row_groups, kept_groups,
                               total_pages, kept_pages)

    def read_plan_rows(self, plan: IcebergScanPlan,
                       predicate: ast.Expr | None) -> list[tuple]:
        """Execute a scan plan: read kept pages, re-filter rows."""
        from ..expr.eval import evaluate_predicate

        rows: list[tuple] = []
        for _, group, page in plan.kept_pages:
            page_columns = {
                name: col.slice(page.row_offset,
                                page.row_offset + page.row_count)
                for name, col in group.columns.items()}
            if predicate is None:
                keep_rows = range(page.row_count)
            else:
                mask = evaluate_predicate(predicate, page_columns,
                                          self.schema)
                keep_rows = [i for i in range(page.row_count)
                             if mask[i]]
            ordered = [page_columns[f.name] for f in self.schema]
            for i in keep_rows:
                rows.append(tuple(col.value_at(i) for col in ordered))
        return rows
