"""repro — a reproduction of "Pruning in Snowflake: Working Smarter, Not Harder".

A from-scratch, laptop-scale implementation of the SIGMOD 2025 paper's
pruning stack: a micro-partitioned columnar storage engine with
zone-map metadata, a vectorized query engine, and four partition
pruning techniques — filter pruning (§3), LIMIT pruning (§4), top-k
pruning (§5), and JOIN pruning (§6) — plus Iceberg/Parquet-style
metadata handling (§8.1) and predicate caching (§8.2).

Quickstart::

    from repro import Catalog, Layout

    catalog = Catalog()
    catalog.create_table_from_rows(
        "events", schema, rows, layout=Layout.sorted_by("ts"))
    result = catalog.sql("SELECT * FROM events WHERE ts >= 1000 LIMIT 5")
    print(result.rows)
    print(result.profile.pruning_summary())
"""

from .types import DataType, Field, Schema
from .errors import (
    ReproError,
    SchemaError,
    TypeMismatchError,
    ParseError,
    PlanError,
    ExecutionError,
    StorageError,
    MetadataError,
    TransientError,
    StorageTimeout,
    StorageThrottled,
    CorruptionError,
    PartitionUnavailableError,
    MetadataTimeout,
    MetadataThrottled,
    MetadataUnavailableError,
    CircuitOpenError,
    QueryTimeout,
    DurabilityError,
    WalCorruptionError,
)
from .faults import (
    CircuitBreaker,
    CrashInjector,
    FaultInjector,
    FaultSpec,
    RetryPolicy,
    RetryStats,
    SimulatedCrash,
)
from .durability import (
    CheckpointManager,
    DurabilityManager,
    WriteAheadLog,
)
from .storage import (
    Column,
    ColumnStats,
    ZoneMap,
    MicroPartition,
    Table,
    TableBuilder,
    Layout,
    MetadataStore,
    StorageLayer,
)
from .storage.builder import build_table
from .cache import CacheStats, PartitionCache, Prefetcher
from .plancache import (
    ParameterizedQuery,
    PlanCache,
    PlanCacheStats,
    parameterize_text,
)
from .catalog import Catalog, QueryResult
from .plan.compiler import CompilerOptions
from .expr.ast import col, lit
from .obs import (
    Span,
    TelemetryRecord,
    TelemetrySink,
    Tracer,
    render_fleet_report,
    render_span_tree,
)
from .pruning.sketches import (
    PartitionSketches,
    ShapeSkipSet,
    SketchConfig,
    SketchIndex,
    SketchPruner,
    build_partition_sketches,
)
from .recluster import (
    ClusteringAdvice,
    IncrementalReclusterer,
    ReclusterJob,
    ReclusterService,
    SliceReport,
    WorkloadAdvisor,
)
from .service import QueryService

__version__ = "1.10.0"

__all__ = [
    "DataType",
    "Field",
    "Schema",
    "ReproError",
    "SchemaError",
    "TypeMismatchError",
    "ParseError",
    "PlanError",
    "ExecutionError",
    "StorageError",
    "MetadataError",
    "TransientError",
    "StorageTimeout",
    "StorageThrottled",
    "CorruptionError",
    "PartitionUnavailableError",
    "MetadataTimeout",
    "MetadataThrottled",
    "MetadataUnavailableError",
    "CircuitOpenError",
    "QueryTimeout",
    "DurabilityError",
    "WalCorruptionError",
    "CircuitBreaker",
    "CrashInjector",
    "FaultInjector",
    "FaultSpec",
    "RetryPolicy",
    "RetryStats",
    "SimulatedCrash",
    "CheckpointManager",
    "DurabilityManager",
    "WriteAheadLog",
    "Column",
    "ColumnStats",
    "ZoneMap",
    "MicroPartition",
    "Table",
    "TableBuilder",
    "Layout",
    "MetadataStore",
    "StorageLayer",
    "build_table",
    "CacheStats",
    "PartitionCache",
    "Prefetcher",
    "ParameterizedQuery",
    "PlanCache",
    "PlanCacheStats",
    "parameterize_text",
    "Catalog",
    "QueryResult",
    "QueryService",
    "CompilerOptions",
    "col",
    "lit",
    "Span",
    "Tracer",
    "render_span_tree",
    "TelemetryRecord",
    "TelemetrySink",
    "render_fleet_report",
    "PartitionSketches",
    "ShapeSkipSet",
    "SketchConfig",
    "SketchIndex",
    "SketchPruner",
    "build_partition_sketches",
    "ClusteringAdvice",
    "IncrementalReclusterer",
    "ReclusterJob",
    "ReclusterService",
    "SliceReport",
    "WorkloadAdvisor",
    "__version__",
]
