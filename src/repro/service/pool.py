"""Multi-cluster warehouse pool: simulated elastic scale-out/in.

Snowflake multiplexes a tenant's queries over a *multi-cluster
warehouse*: when queries queue up, the service spins up another
cluster of the same size; when clusters sit idle, it retires them
(§2 — compute elasticity is the point of disaggregation). The pool
here reproduces the control loop deterministically:

- new queries are routed to the cluster with the most free slots
  (least-loaded routing, FIFO within a cluster);
- when no slot is free anywhere and the total queue depth reaches
  ``scale_out_queue_depth``, a new cluster is added (up to
  ``max_clusters``);
- when the pool has been observed completely idle
  ``scale_in_idle_checks`` times in a row (observations happen on
  every release and on explicit :meth:`poll` calls), the newest
  surplus cluster is retired (down to ``min_clusters``).

Every scaling decision is recorded in :attr:`events` so tests and
benchmarks can assert on the control loop's behaviour.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from .admission import AdmissionController, AdmissionRejected, CancelToken

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..cache.partition_cache import PartitionCache

__all__ = ["ScalingEvent", "WarehouseCluster", "WarehousePool"]


@dataclass(frozen=True)
class ScalingEvent:
    """One scale-out/scale-in decision."""

    action: str        #: "scale_out" | "scale_in"
    n_clusters: int    #: cluster count after the action
    reason: str


class WarehouseCluster:
    """One cluster: a named admission controller plus its local data
    cache (each cluster has its own SSD cache in the paper's
    architecture; a retiring cluster's cache disappears with it)."""

    def __init__(self, name: str, slots: int, max_queue: int,
                 cache: "Optional[PartitionCache]" = None):
        self.name = name
        self.admission = AdmissionController(slots=slots,
                                             max_queue=max_queue)
        self.queries_served = 0
        #: warehouse-local partition cache; None when caching is off.
        self.cache = cache

    @property
    def load(self) -> int:
        return self.admission.running + self.admission.queue_depth

    def __repr__(self) -> str:
        return (f"WarehouseCluster({self.name}, "
                f"running={self.admission.running}, "
                f"queued={self.admission.queue_depth})")


class WarehousePool:
    """An elastic set of identical clusters fronted by one queue
    discipline."""

    def __init__(self, slots_per_cluster: int = 8,
                 max_queue_per_cluster: int = 32,
                 min_clusters: int = 1, max_clusters: int = 4,
                 scale_out_queue_depth: int = 2,
                 scale_in_idle_checks: int = 8,
                 cache_factory:
                 "Optional[Callable[[str], PartitionCache]]" = None,
                 warm_new_caches: bool = True):
        if not 1 <= min_clusters <= max_clusters:
            raise ValueError(
                "need 1 <= min_clusters <= max_clusters")
        self.slots_per_cluster = slots_per_cluster
        self.max_queue_per_cluster = max_queue_per_cluster
        self.min_clusters = min_clusters
        self.max_clusters = max_clusters
        self.scale_out_queue_depth = scale_out_queue_depth
        self.scale_in_idle_checks = scale_in_idle_checks
        #: builds each cluster's local :class:`PartitionCache` from its
        #: name (None = data caching off). The factory is responsible
        #: for attaching the cache to the metadata store.
        self.cache_factory = cache_factory
        #: copy the hottest entries of an existing cluster's cache into
        #: a scaled-out cluster's fresh cache, so a new cluster does
        #: not start fully cold.
        self.warm_new_caches = warm_new_caches
        self._lock = threading.Lock()
        self._counter = 0
        self._clusters: list[WarehouseCluster] = [
            self._new_cluster() for _ in range(min_clusters)]
        self._idle_streak = 0
        self.events: list[ScalingEvent] = []

    def _new_cluster(self) -> WarehouseCluster:
        name = f"cluster-{self._counter}"
        self._counter += 1
        cache = (self.cache_factory(name)
                 if self.cache_factory is not None else None)
        return WarehouseCluster(name, self.slots_per_cluster,
                                self.max_queue_per_cluster, cache=cache)

    # ------------------------------------------------------------------
    @property
    def clusters(self) -> list[WarehouseCluster]:
        return list(self._clusters)

    @property
    def n_clusters(self) -> int:
        return len(self._clusters)

    @property
    def total_running(self) -> int:
        return sum(c.admission.running for c in self._clusters)

    @property
    def total_queued(self) -> int:
        return sum(c.admission.queue_depth for c in self._clusters)

    @property
    def total_slots(self) -> int:
        return self.slots_per_cluster * len(self._clusters)

    # ------------------------------------------------------------------
    def acquire(self, timeout: float | None = None,
                token: CancelToken | None = None
                ) -> tuple[WarehouseCluster, float]:
        """Admit one query; returns (cluster, queue-wait seconds).

        Raises the admission layer's typed errors on a full pool
        (after attempting scale-out), timeout, or cancellation.
        """
        with self._lock:
            self._idle_streak = 0
            # Fast path: any cluster with an uncontended free slot.
            best = max(self._clusters,
                       key=lambda c: c.admission.free_slots)
            if best.admission.try_acquire():
                best.queries_served += 1
                return best, 0.0
            # Saturated: consider adding a cluster before queueing.
            if (len(self._clusters) < self.max_clusters
                    and self.total_queued
                    >= self.scale_out_queue_depth):
                cluster = self._new_cluster()
                if (cluster.cache is not None
                        and self.warm_new_caches):
                    # Seed the fresh cluster's cache with the busiest
                    # sibling's hot set so it does not scan fully cold.
                    donor = max(
                        (c for c in self._clusters
                         if c.cache is not None),
                        key=lambda c: c.queries_served, default=None)
                    if donor is not None:
                        cluster.cache.warm_from(donor.cache)
                self._clusters.append(cluster)
                self.events.append(ScalingEvent(
                    "scale_out", len(self._clusters),
                    f"{self.total_queued} queued across "
                    f"{len(self._clusters) - 1} saturated clusters"))
                cluster.admission.try_acquire()
                cluster.queries_served += 1
                return cluster, 0.0
            # Queue on the least-loaded cluster.
            target = min(self._clusters, key=lambda c: c.load)
        wait = target.admission.acquire(timeout=timeout, token=token)
        target.queries_served += 1
        return target, wait

    def release(self, cluster: WarehouseCluster) -> None:
        """Return a slot and run one idle observation."""
        cluster.admission.release()
        self.poll()

    # ------------------------------------------------------------------
    def poll(self) -> None:
        """One observation of the scale-in control loop."""
        with self._lock:
            if self.total_running == 0 and self.total_queued == 0:
                self._idle_streak += 1
            else:
                self._idle_streak = 0
                return
            if (self._idle_streak >= self.scale_in_idle_checks
                    and len(self._clusters) > self.min_clusters):
                retired = self._clusters.pop()
                self._idle_streak = 0
                if retired.cache is not None:
                    # The cluster's local storage goes away with it:
                    # detach from metadata events and drop all entries.
                    retired.cache.close()
                self.events.append(ScalingEvent(
                    "scale_in", len(self._clusters),
                    f"idle for {self.scale_in_idle_checks} "
                    f"consecutive checks; retired {retired.name}"))

    def __repr__(self) -> str:
        return (f"WarehousePool(clusters={len(self._clusters)}, "
                f"running={self.total_running}, "
                f"queued={self.total_queued})")
