"""Thread-safe counters and histograms for the query service.

The paper's Cloud Services layer is heavily instrumented — the whole
evaluation (§3–§7) is built from fleet telemetry: pruning ratios,
partitions loaded vs. pruned, latency distributions. This module is
the reproduction's telemetry sink: a tiny registry of named counters
and histograms that the :class:`~repro.service.server.QueryService`
feeds from each query's :class:`~repro.engine.context.QueryProfile`.

Everything is safe to update from many worker threads concurrently.

Well-known background-maintenance counters (fed by
:class:`~repro.recluster.ReclusterService` when reclustering is
enabled): ``recluster_jobs_started``, ``recluster_jobs_completed``,
``recluster_slices``, ``recluster_partitions_rewritten``,
``recluster_bytes_rewritten``, and ``recluster_pauses`` (slices the
loop skipped because queued queries exceeded the pressure threshold).
"""

from __future__ import annotations

import threading
from bisect import insort
from typing import Iterable

from ..engine.context import QueryProfile

__all__ = ["Counter", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing, lock-guarded counter."""

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self._value:g})"


class Histogram:
    """Exact-percentile histogram over observed values.

    Keeps a sorted list of observations (fine at simulation scale;
    a production system would use fixed buckets or a sketch) so
    :meth:`percentile` is exact.
    """

    def __init__(self, name: str):
        self.name = name
        self._values: list[float] = []
        self._sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            insort(self._values, value)
            self._sum += value

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / len(self._values) if self._values \
                else 0.0

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0 <= p <= 100), 0.0 when empty."""
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        with self._lock:
            if not self._values:
                return 0.0
            rank = (p / 100) * (len(self._values) - 1)
            low = int(rank)
            high = min(low + 1, len(self._values) - 1)
            fraction = rank - low
            return (self._values[low] * (1 - fraction)
                    + self._values[high] * fraction)

    def __repr__(self) -> str:
        return (f"Histogram({self.name}, n={self.count}, "
                f"p50={self.percentile(50):.3f})")


class MetricsRegistry:
    """Named counters and histograms, created on first use.

    Well-known series fed by :class:`QueryService`:

    - counters ``queries_submitted`` / ``queries_completed`` /
      ``queries_failed`` / ``queries_cancelled`` /
      ``queries_rejected`` / ``queries_timed_out`` / ``dml_statements``
    - counters ``result_cache_hits`` / ``result_cache_misses``
    - counters ``plan_cache_hits`` / ``plan_cache_misses``
      (compiled-plan cache, see :mod:`repro.plancache`)
    - counters ``data_cache_hits`` / ``data_cache_misses`` /
      ``data_cache_bytes_saved`` (warehouse-local partition cache)
    - counters ``partitions_total`` / ``partitions_loaded`` /
      ``partitions_pruned`` / ``rows_scanned`` / ``bytes_scanned``
      (from profiles)
    - counters ``retries`` / ``retry_backoff_ms`` /
      ``injected_latency_ms`` / ``partitions_degraded`` plus
      ``queries_retried`` / ``queries_degraded`` (resilience)
    - counters ``pruning_time_ms`` / ``scans_vectorized`` and
      histogram ``scan_parallelism`` (vectorized pruning + morsel
      scan execution)
    - counters ``wal_appends`` / ``wal_bytes`` / ``checkpoints``
      (durability subsystem, see :mod:`repro.durability`)
    - histograms ``queue_wait_ms`` / ``latency_ms`` (wall clock) and
      ``sim_exec_ms`` / ``sim_compile_ms`` (simulated clock)
    """

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name)
            return self._counters[name]

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(name)
            return self._histograms[name]

    # ------------------------------------------------------------------
    # Service-layer feeds
    # ------------------------------------------------------------------
    def observe_profile(self, profile: QueryProfile) -> None:
        """Fold one query's profile into the fleet-wide series."""
        export = profile.metrics_export()
        self.histogram("sim_exec_ms").observe(export["exec_ms"])
        self.histogram("sim_compile_ms").observe(export["compile_ms"])
        for key in ("partitions_total", "partitions_loaded",
                    "partitions_pruned", "rows_scanned",
                    "bytes_scanned",
                    "retries", "retry_backoff_ms",
                    "injected_latency_ms", "partitions_degraded",
                    "pruning_time_ms", "scans_vectorized",
                    "data_cache_hits", "data_cache_misses",
                    "data_cache_bytes_saved",
                    "plan_cache_hits", "plan_cache_misses",
                    "wal_appends", "wal_bytes"):
            self.counter(key).inc(export[key])
        self.histogram("scan_parallelism").observe(
            export["scan_parallelism"])

    def observe_query(self, latency_ms: float,
                      queue_wait_ms: float) -> None:
        self.histogram("latency_ms").observe(latency_ms)
        self.histogram("queue_wait_ms").observe(queue_wait_ms)

    # ------------------------------------------------------------------
    # Derived ratios
    # ------------------------------------------------------------------
    def cache_hit_ratio(self) -> float:
        """result_cache_hits / (hits + misses); 0.0 before traffic."""
        hits = self.counter("result_cache_hits").value
        misses = self.counter("result_cache_misses").value
        lookups = hits + misses
        return hits / lookups if lookups else 0.0

    def data_cache_hit_ratio(self) -> float:
        """data_cache_hits / (hits + misses); 0.0 before traffic."""
        hits = self.counter("data_cache_hits").value
        misses = self.counter("data_cache_misses").value
        lookups = hits + misses
        return hits / lookups if lookups else 0.0

    def plan_cache_hit_ratio(self) -> float:
        """plan_cache_hits / (hits + misses); 0.0 before traffic."""
        hits = self.counter("plan_cache_hits").value
        misses = self.counter("plan_cache_misses").value
        lookups = hits + misses
        return hits / lookups if lookups else 0.0

    def pruning_ratio(self) -> float:
        """Fraction of candidate partitions pruned across all queries."""
        total = self.counter("partitions_total").value
        pruned = self.counter("partitions_pruned").value
        return pruned / total if total else 0.0

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, float]:
        """Flat point-in-time view of every series."""
        out: dict[str, float] = {}
        with self._lock:
            counters = list(self._counters.values())
            histograms = list(self._histograms.values())
        for counter in counters:
            out[counter.name] = counter.value
        for histogram in histograms:
            out[f"{histogram.name}.count"] = float(histogram.count)
            out[f"{histogram.name}.mean"] = histogram.mean
            out[f"{histogram.name}.p50"] = histogram.percentile(50)
            out[f"{histogram.name}.p95"] = histogram.percentile(95)
            out[f"{histogram.name}.p99"] = histogram.percentile(99)
        out["result_cache.hit_ratio"] = self.cache_hit_ratio()
        out["data_cache.hit_ratio"] = self.data_cache_hit_ratio()
        out["plan_cache.hit_ratio"] = self.plan_cache_hit_ratio()
        out["pruning.ratio"] = self.pruning_ratio()
        return out

    def render(self, names: Iterable[str] | None = None) -> str:
        """Human-readable report (optionally restricted to ``names``)."""
        snap = self.snapshot()
        keys = sorted(snap) if names is None else \
            [n for n in names if n in snap]
        width = max((len(k) for k in keys), default=0)
        return "\n".join(f"{key.ljust(width)}  {snap[key]:.3f}"
                         for key in keys)
