"""The concurrent query service layer (the paper's Cloud Services, §2).

A thread-based, multi-tenant front end over a
:class:`~repro.catalog.Catalog`:

- :mod:`.server` — the :class:`QueryService` facade
  (``submit``/``result``/``cancel`` plus a synchronous ``sql`` shim);
- :mod:`.admission` — per-cluster concurrency slots, bounded FIFO
  queueing, queue-wait timeouts, cooperative cancellation, and
  typed backpressure errors;
- :mod:`.result_cache` — normalized-SQL result cache invalidated by
  table version bumps;
- :mod:`.pool` — elastic multi-cluster warehouse pool (scale-out on
  queueing, scale-in when idle);
- :mod:`.metrics` — thread-safe counters/histograms fed from each
  query's profile.

Quickstart::

    from repro import Catalog
    from repro.service import QueryService

    service = QueryService(catalog, slots_per_cluster=4)
    result = service.sql("SELECT * FROM t WHERE ts >= 100")
    handle = service.submit("SELECT count(*) FROM t")
    print(service.result(handle).rows)
    print(service.metrics.render())
"""

from .admission import (
    AdmissionController,
    AdmissionError,
    AdmissionRejected,
    CancelToken,
    QueryCancelled,
    QueueWaitTimeout,
    ReadWriteLock,
)
from .metrics import Counter, Histogram, MetricsRegistry
from .pool import ScalingEvent, WarehouseCluster, WarehousePool
from .result_cache import CacheEntry, CacheStats, ResultCache
from .server import QueryHandle, QueryService, QueryStatus, ServiceError

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "AdmissionRejected",
    "CancelToken",
    "QueryCancelled",
    "QueueWaitTimeout",
    "ReadWriteLock",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "ScalingEvent",
    "WarehouseCluster",
    "WarehousePool",
    "CacheEntry",
    "CacheStats",
    "ResultCache",
    "QueryHandle",
    "QueryService",
    "QueryStatus",
    "ServiceError",
]
