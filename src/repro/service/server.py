"""The multi-tenant query service facade.

:class:`QueryService` is the reproduction's Cloud Services layer
(§2): it sits above a :class:`~repro.catalog.Catalog` and multiplexes
many concurrent client threads onto shared simulated compute:

1. **Result cache** — repeated SELECTs are answered directly from
   :class:`~repro.service.result_cache.ResultCache` without admission
   or execution, and invalidate automatically on table version bumps.
2. **Admission** — cache misses acquire a concurrency slot from the
   elastic :class:`~repro.service.pool.WarehousePool` (bounded FIFO
   queue, queue-wait timeout, typed rejection on overload).
3. **Isolation** — SELECTs run under a shared lock, DML and
   reclustering under an exclusive lock, so every query sees a
   consistent table snapshot (the simulation's stand-in for
   snapshot isolation over immutable micro-partitions).
4. **Telemetry** — every query feeds the
   :class:`~repro.service.metrics.MetricsRegistry`: queue wait and
   latency histograms, cache hit ratio, partitions pruned/loaded.

Clients either call :meth:`QueryService.sql` (synchronous shim, runs
on the calling thread) or :meth:`submit` / :meth:`result` /
:meth:`cancel` for asynchronous submission.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Any

from ..catalog import Catalog, QueryResult
from ..errors import QueryTimeout, ReproError
from ..faults.retry import RetryPolicy
from ..obs.telemetry import TelemetryRecord
from ..sql.normalize import is_select, normalize_sql, referenced_tables
from .admission import CancelToken, QueryCancelled, ReadWriteLock
from .metrics import MetricsRegistry
from .pool import WarehousePool
from .result_cache import ResultCache

__all__ = ["QueryStatus", "QueryHandle", "ServiceError", "QueryService"]

_HANDLE_COUNTER = itertools.count(1)


class ServiceError(ReproError):
    """The service could not process a request (unknown handle, ...)."""


class QueryStatus(Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


@dataclass
class QueryHandle:
    """Client-visible state of one submitted query."""

    query_id: str
    sql: str
    status: QueryStatus = QueryStatus.QUEUED
    result: QueryResult | None = None
    error: BaseException | None = None
    cache_hit: bool = False
    #: the query succeeded but pruning degraded to full scans for
    #: some partitions (metadata unavailable); rows are still correct
    degraded: bool = False
    #: whole-query re-runs after transient failures (SELECT only)
    attempts: int = 1
    cluster: str = ""
    queue_wait_ms: float = 0.0
    latency_ms: float = 0.0
    token: CancelToken = field(default_factory=CancelToken)
    _done: threading.Event = field(default_factory=threading.Event,
                                   repr=False, compare=False)

    @property
    def finished(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        return self._done.wait(timeout)


class QueryService:
    """A thread-safe, multi-tenant front end over one catalog."""

    def __init__(self, catalog: Catalog, *,
                 slots_per_cluster: int = 8,
                 max_queue_per_cluster: int = 32,
                 min_clusters: int = 1, max_clusters: int = 4,
                 scale_out_queue_depth: int = 2,
                 scale_in_idle_checks: int = 8,
                 queue_timeout: float | None = None,
                 result_cache_entries: int = 256,
                 enable_result_cache: bool = True,
                 query_retry_policy: RetryPolicy | None = None,
                 metrics: MetricsRegistry | None = None,
                 scan_parallelism: int | None = None,
                 telemetry_capacity: int = 4096,
                 data_cache_bytes: int | None = None,
                 warm_new_caches: bool = True,
                 plan_cache_entries: int | None = None,
                 durability_dir: str | Path | None = None,
                 durability_checkpoint_bytes: int = 4 * 2 ** 20):
        self.catalog = catalog
        #: crash safety (WAL + checkpoints, see :mod:`repro.durability`).
        #: Opening a directory with existing state replays it into the
        #: catalog before the service takes traffic; afterwards every
        #: committed DML statement is logged before it is applied, and
        #: a background thread checkpoints once the log grows past
        #: ``durability_checkpoint_bytes``.
        if durability_dir is not None:
            catalog.enable_durability(
                durability_dir,
                checkpoint_bytes=durability_checkpoint_bytes)
        self._checkpoint_lock = threading.Lock()
        self._checkpointing = False
        #: plan-shape compiled-plan cache (Fig. 12): result-cache
        #: misses that repeat a known shape skip parse/bind/plan and
        #: only rebind literals. ``None`` leaves the catalog's own
        #: setting untouched.
        if plan_cache_entries is not None:
            catalog.enable_plan_cache(max_entries=plan_cache_entries)
        #: fleet telemetry: the catalog writes one record per executed
        #: statement; the service annotates it with queue wait, wall
        #: clock, and cluster, and adds records for cache hits and
        #: failures (which never reach the catalog's recorder).
        self.telemetry = catalog.enable_telemetry(
            capacity=telemetry_capacity)
        #: morsel workers per table scan. ``None`` keeps the catalog's
        #: setting; the common deployment sets it to the warehouse slot
        #: count so one query's scan saturates one cluster.
        if scan_parallelism is not None:
            catalog.scan_parallelism = max(1, int(scan_parallelism))
        #: optional whole-query retry of transient failures that
        #: escaped the storage/metadata retry layers. SELECT-only:
        #: DML is not idempotent, so it never re-runs.
        self.query_retry_policy = query_retry_policy
        #: per-cluster warehouse-local data caches (paper §2): each
        #: cluster caches the partitions it scans on its own local
        #: storage, retired clusters drop theirs, scaled-out clusters
        #: are optionally warmed from the busiest sibling. ``None``
        #: turns data caching off (the default keeps existing
        #: deployments byte-identical).
        cache_factory = None
        if data_cache_bytes is not None:
            from ..cache.partition_cache import PartitionCache

            def cache_factory(name: str) -> PartitionCache:
                return PartitionCache(
                    data_cache_bytes,
                    name=f"{name}-data-cache").attach(catalog.metadata)
        self.pool = WarehousePool(
            slots_per_cluster=slots_per_cluster,
            max_queue_per_cluster=max_queue_per_cluster,
            min_clusters=min_clusters, max_clusters=max_clusters,
            scale_out_queue_depth=scale_out_queue_depth,
            scale_in_idle_checks=scale_in_idle_checks,
            cache_factory=cache_factory,
            warm_new_caches=warm_new_caches)
        self.result_cache = ResultCache(result_cache_entries) \
            if enable_result_cache else None
        self.metrics = metrics or MetricsRegistry()
        self.queue_timeout = queue_timeout
        self._table_lock = ReadWriteLock()
        self._queries: dict[str, QueryHandle] = {}
        self._queries_lock = threading.Lock()
        #: background reclustering loop (see
        #: :meth:`enable_reclustering`); None until enabled.
        self.reclusterer = None
        if self.result_cache is not None:
            catalog.add_change_listener(self._on_table_change)

    # ------------------------------------------------------------------
    # Catalog change hook
    # ------------------------------------------------------------------
    def _on_table_change(self, table: str, version: int) -> None:
        self.result_cache.invalidate_table(table)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def sql(self, text: str, *,
            queue_timeout: float | None = None,
            timeout: float | None = None) -> QueryResult:
        """Synchronous shim: submit, execute, and return the result
        (or raise the query's error).

        With ``timeout`` (seconds) the statement runs on a service
        thread; if it has not finished in time it is cooperatively
        cancelled and :class:`~repro.errors.QueryTimeout` is raised.
        Without a timeout it runs on the calling thread.
        """
        if timeout is None:
            handle = self._register(text)
            self._run(handle, queue_timeout=queue_timeout)
            return self.result(handle.query_id)
        handle = self.submit(text, queue_timeout=queue_timeout)
        if not handle.wait(timeout):
            self.cancel(handle)
            self.metrics.counter("queries_timed_out").inc()
            raise QueryTimeout(
                f"query {handle.query_id} exceeded its {timeout}s "
                f"deadline and was cancelled")
        return self.result(handle.query_id)

    def submit(self, text: str, *,
               queue_timeout: float | None = None) -> QueryHandle:
        """Asynchronous submission; execution starts immediately on a
        service thread. Returns the handle to poll/await."""
        handle = self._register(text)
        worker = threading.Thread(
            target=self._run, args=(handle,),
            kwargs={"queue_timeout": queue_timeout},
            name=f"query-{handle.query_id}", daemon=True)
        worker.start()
        return handle

    def result(self, query_id: str | QueryHandle,
               timeout: float | None = None) -> QueryResult:
        """Block until a query finishes and return its result.

        Raises the query's own error for failed/cancelled/rejected
        queries, or :class:`ServiceError` on unknown ids / timeout.
        """
        handle = self._handle(query_id)
        if not handle.wait(timeout):
            raise ServiceError(
                f"query {handle.query_id} still "
                f"{handle.status.value} after {timeout}s")
        if handle.error is not None:
            raise handle.error
        assert handle.result is not None
        return handle.result

    def cancel(self, query_id: str | QueryHandle) -> bool:
        """Request cooperative cancellation; True if the query had
        not already finished."""
        handle = self._handle(query_id)
        if handle.finished:
            return False
        handle.token.cancel()
        return True

    def status(self, query_id: str | QueryHandle) -> QueryStatus:
        return self._handle(query_id).status

    def insert(self, table: str, rows, *,
               queue_timeout: float | None = None) -> list[int]:
        """Bulk-load rows through the service (admission + exclusive
        lock), so concurrent SELECTs never observe a half-applied
        load. Returns the new partition ids."""
        cluster, _ = self.pool.acquire(
            timeout=self.queue_timeout
            if queue_timeout is None else queue_timeout)
        try:
            with self._table_lock.write():
                new_ids = self.catalog.insert(table, rows)
        finally:
            self.pool.release(cluster)
        self.metrics.counter("dml_statements").inc()
        self._maybe_checkpoint()
        return new_ids

    def enable_reclustering(self, *, start: bool = False,
                            **options: Any):
        """Attach the telemetry-driven background reclustering loop
        (:class:`~repro.recluster.ReclusterService`). Idempotent: a
        second call returns the existing instance unchanged.

        With ``start=True`` the polling daemon starts immediately;
        otherwise drive it explicitly via ``reclusterer.step()`` (or
        call ``reclusterer.start()`` later). Keyword options are
        forwarded to the ReclusterService constructor
        (``budget_bytes``, ``pause_queue_depth``, ``advisor``, ...).
        """
        if self.reclusterer is None:
            from ..recluster import ReclusterService

            self.reclusterer = ReclusterService(self, **options)
            if start:
                self.reclusterer.start()
        return self.reclusterer

    def describe(self) -> dict[str, Any]:
        """Operational snapshot: pool shape, cache, key metrics."""
        snap = {
            "clusters": self.pool.n_clusters,
            "running": self.pool.total_running,
            "queued": self.pool.total_queued,
            "cache_entries": len(self.result_cache)
            if self.result_cache is not None else 0,
            "cache_hit_ratio": self.metrics.cache_hit_ratio(),
            "pruning_ratio": self.metrics.pruning_ratio(),
            "scan_parallelism": self.catalog.scan_parallelism,
            "pruning_time_ms": self.metrics.counter(
                "pruning_time_ms").value,
            "scans_vectorized": self.metrics.counter(
                "scans_vectorized").value,
        }
        for name in ("queries_completed", "queries_failed",
                     "queries_cancelled", "queries_rejected",
                     "queries_retried", "queries_degraded",
                     "queries_timed_out"):
            snap[name] = self.metrics.counter(name).value
        caches = [c for c in self.pool.clusters
                  if c.cache is not None]
        if caches:
            per_cluster = {c.name: c.cache.stats().to_dict()
                           for c in caches}
            hits = sum(s["hits"] for s in per_cluster.values())
            misses = sum(s["misses"] for s in per_cluster.values())
            snap["data_cache"] = {
                "hits": hits,
                "misses": misses,
                "hit_ratio": (hits / (hits + misses)
                              if hits + misses else 0.0),
                "bytes_saved": sum(s["bytes_saved"]
                                   for s in per_cluster.values()),
                "resident_bytes": sum(s["resident_bytes"]
                                      for s in per_cluster.values()),
                "clusters": per_cluster,
            }
        if self.catalog.plan_cache is not None:
            snap["plan_cache"] = self.catalog.plan_cache.stats.to_dict()
            snap["plan_cache_hit_ratio"] = \
                self.metrics.plan_cache_hit_ratio()
        if self.catalog.sketch_config is not None:
            sketched = 0
            try:
                sketched = sum(
                    len(self.catalog.sketches_of(name))
                    for name in self.catalog.tables)
            except Exception:  # noqa: BLE001 - degraded metadata
                pass
            snap["sketches"] = {
                "enabled": True,
                "partitions_with_sketches": sketched,
                "build_failures": self.catalog.sketch_build_failures,
                "build_ms": round(self.catalog.sketch_build_ms, 3),
                "skip_sets": (self.catalog.skip_sets.stats()
                              if self.catalog.skip_sets is not None
                              else {}),
            }
        if self.catalog.durability is not None:
            snap["durability"] = self.catalog.durability.stats()
            snap["checkpoints"] = self.metrics.counter(
                "checkpoints").value
        if self.reclusterer is not None:
            snap["reclustering"] = self.reclusterer.status()
            for name in ("recluster_jobs_started",
                         "recluster_jobs_completed",
                         "recluster_slices",
                         "recluster_partitions_rewritten",
                         "recluster_bytes_rewritten",
                         "recluster_pauses"):
                snap[name] = self.metrics.counter(name).value
        snap["telemetry"] = self.telemetry.summary()
        breaker = self.catalog.metadata.breaker
        if breaker is not None:
            snap["metadata_breaker"] = breaker.snapshot()
        injector = self.catalog.storage.fault_injector
        if injector is not None:
            snap["faults_injected"] = injector.total_injected()
        return snap

    # ------------------------------------------------------------------
    # Background checkpointing
    # ------------------------------------------------------------------
    def _maybe_checkpoint(self) -> None:
        """Kick off a background checkpoint when the WAL has grown past
        the configured threshold. Single-flight: at most one checkpoint
        thread runs at a time; DML keeps committing (to the WAL) while
        a previous checkpoint is still writing."""
        manager = self.catalog.durability
        if manager is None or not manager.should_checkpoint():
            return
        with self._checkpoint_lock:
            if self._checkpointing:
                return
            self._checkpointing = True
        threading.Thread(target=self._run_checkpoint,
                         name="durability-checkpoint",
                         daemon=True).start()

    def _run_checkpoint(self) -> None:
        try:
            manager = self.catalog.durability
            if manager is None:
                return
            # The exclusive lock gives the snapshot a quiesced catalog;
            # DML queued behind it resumes logging to the truncated WAL.
            with self._table_lock.write():
                if not manager.should_checkpoint():
                    return
                manager.checkpoint(self.catalog)
            self.metrics.counter("checkpoints").inc()
        finally:
            with self._checkpoint_lock:
                self._checkpointing = False

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _register(self, text: str) -> QueryHandle:
        handle = QueryHandle(
            query_id=f"svc-{next(_HANDLE_COUNTER)}", sql=text)
        with self._queries_lock:
            self._queries[handle.query_id] = handle
        self.metrics.counter("queries_submitted").inc()
        return handle

    def _handle(self, query_id: str | QueryHandle) -> QueryHandle:
        if isinstance(query_id, QueryHandle):
            return query_id
        with self._queries_lock:
            try:
                return self._queries[query_id]
            except KeyError:
                raise ServiceError(
                    f"unknown query id {query_id!r}") from None

    def _finish(self, handle: QueryHandle, status: QueryStatus,
                *, result: QueryResult | None = None,
                error: BaseException | None = None) -> None:
        handle.result = result
        handle.error = error
        handle.status = status
        counter = {
            QueryStatus.DONE: "queries_completed",
            QueryStatus.FAILED: "queries_failed",
            QueryStatus.CANCELLED: "queries_cancelled",
        }[status]
        self.metrics.counter(counter).inc()
        handle._done.set()

    def _run(self, handle: QueryHandle,
             queue_timeout: float | None = None) -> None:
        start = time.perf_counter()
        try:
            self._execute_with_retries(handle, queue_timeout)
        except QueryCancelled as exc:
            self._record_terminal(handle, "cancelled", exc, start)
            self._finish(handle, QueryStatus.CANCELLED, error=exc)
        except BaseException as exc:  # noqa: BLE001 — stored, re-raised
            from .admission import AdmissionRejected, QueueWaitTimeout

            if isinstance(exc, AdmissionRejected):
                self.metrics.counter("queries_rejected").inc()
            elif isinstance(exc, QueueWaitTimeout):
                self.metrics.counter("queries_timed_out").inc()
            self._record_terminal(handle, "error", exc, start)
            self._finish(handle, QueryStatus.FAILED, error=exc)
        finally:
            handle.latency_ms = (time.perf_counter() - start) * 1e3

    def _record_terminal(self, handle: QueryHandle, status: str,
                         error: BaseException, start: float) -> None:
        """Telemetry for a query that never produced a result (failed
        or cancelled) — the catalog's recorder never saw it finish."""
        self.telemetry.record(TelemetryRecord(
            query_id=handle.query_id, sql=handle.sql,
            status=status, error=type(error).__name__,
            attempts=handle.attempts, cluster=handle.cluster,
            queue_wait_ms=handle.queue_wait_ms,
            wall_ms=(time.perf_counter() - start) * 1e3))

    def _execute_with_retries(self, handle: QueryHandle,
                              queue_timeout: float | None) -> None:
        """Run a query, re-running SELECTs whose failure is transient.

        The storage/metadata layers already absorb most transient
        faults with their own retry policies; this is the outer safety
        net for the rare fault that exhausts them. DML never re-runs —
        a partially applied statement must surface, not double-apply.
        """
        policy = self.query_retry_policy
        if policy is None:
            self._execute(handle, queue_timeout)
            return
        attempt = 0
        while True:
            try:
                self._execute(handle, queue_timeout)
                return
            except policy.retryable:
                if not is_select(handle.sql):
                    raise
                if attempt >= policy.max_attempts - 1:
                    raise
                attempt += 1
                handle.attempts = attempt + 1
                handle.status = QueryStatus.QUEUED
                self.metrics.counter("queries_retried").inc()

    def _execute(self, handle: QueryHandle,
                 queue_timeout: float | None) -> None:
        from ..sql.parser import SelectStmt, parse_statement

        handle.token.raise_if_cancelled()
        # Parse exactly once per execution; the parsed statement feeds
        # the select/DML dispatch, the table-version snapshot, and the
        # catalog (which would otherwise each re-parse the text).
        stmt = parse_statement(handle.sql)  # surfaces parse errors
        select = isinstance(stmt, SelectStmt)
        if not select:
            self.metrics.counter("dml_statements").inc()
        cache_key: Any = ""
        tables: tuple[str, ...] = ()
        if select and self.result_cache is not None:
            cache_key = self._result_cache_key(handle.sql)
            tables = referenced_tables(stmt)
            with self._table_lock.read():
                versions = self.catalog.table_versions(tables)
                cached = self.result_cache.lookup(cache_key, versions)
            if cached is not None:
                self.metrics.counter("result_cache_hits").inc()
                handle.cache_hit = True
                result = QueryResult(schema=cached.schema,
                                     rows=cached.rows,
                                     profile=cached.profile,
                                     sql=handle.sql)
                # No warehouse work happened: record the (near-zero)
                # serving latency but do not re-count the cached
                # profile's pruning/I-O numbers.
                self.metrics.observe_query(0.0, 0.0)
                self.telemetry.record(TelemetryRecord(
                    query_id=handle.query_id, sql=handle.sql,
                    kind="select", tables=tables,
                    status="cache_hit", result_cache_hit=True,
                    rows_returned=len(result.rows)))
                self._finish(handle, QueryStatus.DONE, result=result)
                return
            self.metrics.counter("result_cache_misses").inc()
        cluster, wait = self.pool.acquire(
            timeout=self.queue_timeout
            if queue_timeout is None else queue_timeout,
            token=handle.token)
        handle.cluster = cluster.name
        handle.queue_wait_ms = wait * 1e3
        try:
            handle.token.raise_if_cancelled()
            handle.status = QueryStatus.RUNNING
            started = time.perf_counter()
            if select:
                with self._table_lock.read():
                    result = self.catalog.sql(handle.sql,
                                              cache=cluster.cache,
                                              parsed=stmt)
                    if self.result_cache is not None:
                        # Versions cannot move while we hold the read
                        # lock, so this snapshot matches the data the
                        # query actually saw.
                        self.result_cache.store(
                            cache_key, result,
                            self.catalog.table_versions(tables))
            else:
                with self._table_lock.write():
                    result = self.catalog.sql(handle.sql,
                                              cache=cluster.cache,
                                              parsed=stmt)
        finally:
            self.pool.release(cluster)
        if not select:
            self._maybe_checkpoint()
        if select:
            # A SELECT cancelled mid-execution discards its result;
            # committed DML is reported as done regardless (its
            # effects are already visible).
            handle.token.raise_if_cancelled()
        self._record(handle, result, started)
        self._finish(handle, QueryStatus.DONE, result=result)

    def _result_cache_key(self, text: str) -> Any:
        """Parameterized result-cache key: (shape key, bound literals).

        Same-shape statements with equal literal *values* share one
        entry even when the spellings differ (``1.0`` vs ``1.00``),
        which the old normalized-text key treated as distinct. Falls
        back to the normalized text if parameterization fails.
        """
        from ..plancache.parameterize import parameterize_text

        try:
            return parameterize_text(text).cache_key
        except ReproError:
            return normalize_sql(text)

    def _record(self, handle: QueryHandle, result: QueryResult,
                started: float) -> None:
        wall_ms = (time.perf_counter() - started) * 1e3
        self.metrics.observe_query(wall_ms, handle.queue_wait_ms)
        self.metrics.observe_profile(result.profile)
        handle.degraded = result.profile.degraded
        if handle.degraded:
            self.metrics.counter("queries_degraded").inc()
        # The catalog already wrote this query's telemetry record
        # (keyed by its profile id); enrich it with what only the
        # service knows. A record evicted from the ring between then
        # and now is re-recorded whole.
        annotated = self.telemetry.annotate(
            result.profile.query_id,
            queue_wait_ms=handle.queue_wait_ms, wall_ms=wall_ms,
            cluster=handle.cluster, attempts=handle.attempts)
        if not annotated:
            record = TelemetryRecord.from_result(result,
                                                 wall_ms=wall_ms)
            record.queue_wait_ms = handle.queue_wait_ms
            record.cluster = handle.cluster
            record.attempts = handle.attempts
            self.telemetry.record(record)
