"""Query result cache keyed on parameterized SQL + table versions.

Snowflake's Cloud Services layer answers repeated queries from a
result cache without ever touching a warehouse (§2). Our cache key is
the statement's *(plan-shape key, bound-literal tuple)* pair (see
:mod:`repro.plancache.parameterize`) — so literal spellings that
normalize differently as text (``1.0`` vs ``1.00``) share one entry —
with the normalized statement text (:mod:`repro.sql.normalize`) as a
fallback key. An entry additionally pins the data **version** of
every table the query read. A lookup only hits when each referenced table still has the
version recorded at store time, so DML and reclustering invalidate
results automatically — version-mismatched entries are evicted as
stale the moment they are seen (and eagerly via
:meth:`invalidate_table`, wired to the catalog's change listener).

Entries are kept LRU; capacity is bounded by ``max_entries``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Hashable

from ..catalog import QueryResult

__all__ = ["CacheStats", "CacheEntry", "ResultCache"]


@dataclass
class CacheStats:
    """Lifetime counters (all guarded by the cache's lock)."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    stale_evictions: int = 0
    capacity_evictions: int = 0
    stores: int = 0
    invalidations: int = 0

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class CacheEntry:
    """One cached result with its validity snapshot."""

    key: Hashable
    result: QueryResult
    table_versions: dict[str, int] = field(default_factory=dict)
    hits: int = 0


class ResultCache:
    """LRU result cache with version-based invalidation.

    Keys are any hashable value — the service uses
    ``(shape_key, binds)`` tuples so same-shape queries with equal
    literals share an entry regardless of spelling.
    """

    def __init__(self, max_entries: int = 256):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: OrderedDict[Hashable, CacheEntry] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def lookup(self, key: Hashable,
               current_versions: dict[str, int]) -> QueryResult | None:
        """The cached result, or None on miss/stale.

        ``current_versions`` must cover every table the statement
        references (version snapshot taken under the service's read
        lock, so no DML can commit between the check and the return).
        """
        with self._lock:
            self.stats.lookups += 1
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            if entry.table_versions != current_versions:
                del self._entries[key]
                self.stats.stale_evictions += 1
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            entry.hits += 1
            self.stats.hits += 1
            return entry.result

    def store(self, key: Hashable, result: QueryResult,
              table_versions: dict[str, int]) -> None:
        """Insert/replace an entry; evicts LRU beyond capacity."""
        entry = CacheEntry(key=key, result=result,
                           table_versions=dict(table_versions))
        with self._lock:
            self._entries.pop(key, None)
            self._entries[key] = entry
            self.stats.stores += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.capacity_evictions += 1

    # ------------------------------------------------------------------
    def invalidate_table(self, table: str) -> int:
        """Eagerly drop every entry that read ``table``; returns the
        number dropped. (Version checks would catch them lazily; eager
        invalidation frees memory and keeps stats honest.)"""
        table = table.lower()
        with self._lock:
            doomed = [key for key, entry in self._entries.items()
                      if table in entry.table_versions]
            for key in doomed:
                del self._entries[key]
            self.stats.invalidations += len(doomed)
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
