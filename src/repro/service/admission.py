"""Admission control: concurrency slots, bounded queue, backpressure.

A Snowflake warehouse runs a limited number of queries concurrently;
excess queries wait in the Cloud Services layer's queue, and when the
queue itself fills up the service sheds load instead of collapsing
(§2's multi-tenant service layer). This module reproduces that
behaviour for one cluster:

- a fixed number of **concurrency slots**;
- a bounded **FIFO queue** for queries that arrive while all slots
  are busy;
- **queue-wait timeouts** (a queued query gives up after a deadline);
- **cooperative cancellation** (a queued or running query can be
  cancelled through its :class:`CancelToken`);
- **backpressure**: when the queue is full, :meth:`acquire` raises
  the typed :class:`AdmissionRejected` immediately.

It also provides the :class:`ReadWriteLock` the service uses to give
SELECTs shared access and DML exclusive access to a catalog — the
simulation's stand-in for snapshot isolation.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Callable

from ..errors import ReproError

__all__ = [
    "AdmissionError",
    "AdmissionRejected",
    "QueueWaitTimeout",
    "QueryCancelled",
    "CancelToken",
    "AdmissionController",
    "ReadWriteLock",
]


class AdmissionError(ReproError):
    """Base class for admission-control failures."""


class AdmissionRejected(AdmissionError):
    """The cluster's wait queue is full; the query was shed."""


class QueueWaitTimeout(AdmissionError):
    """The query waited in the queue past its deadline."""


class QueryCancelled(AdmissionError):
    """The query was cancelled before or during execution."""


class CancelToken:
    """Cooperative cancellation flag shared with a running query.

    ``cancel()`` flips the flag and runs any registered callbacks
    (used to wake queued waiters). Execution code calls
    :meth:`raise_if_cancelled` at safe points.
    """

    def __init__(self):
        self._cancelled = False
        self._lock = threading.Lock()
        self._callbacks: list[Callable[[], None]] = []

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        with self._lock:
            if self._cancelled:
                return
            self._cancelled = True
            callbacks = list(self._callbacks)
            self._callbacks.clear()
        for callback in callbacks:
            callback()

    def on_cancel(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` on cancellation (immediately if already
        cancelled)."""
        with self._lock:
            if not self._cancelled:
                self._callbacks.append(callback)
                return
        callback()

    def raise_if_cancelled(self) -> None:
        if self._cancelled:
            raise QueryCancelled("query was cancelled")


class _Waiter:
    """One queued admission request."""

    __slots__ = ("event", "token", "granted")

    def __init__(self, token: CancelToken | None):
        self.event = threading.Event()
        self.token = token
        self.granted = False


class AdmissionController:
    """Concurrency slots plus a bounded FIFO wait queue."""

    def __init__(self, slots: int = 8, max_queue: int = 32):
        if slots < 1:
            raise ValueError("need at least one concurrency slot")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.slots = slots
        self.max_queue = max_queue
        self._lock = threading.Lock()
        self._free = slots
        self._running = 0
        self._queue: deque[_Waiter] = deque()

    # ------------------------------------------------------------------
    @property
    def running(self) -> int:
        """Queries currently holding a slot."""
        return self._running

    @property
    def queue_depth(self) -> int:
        """Queries currently waiting for a slot."""
        return len(self._queue)

    @property
    def free_slots(self) -> int:
        return self._free

    # ------------------------------------------------------------------
    def try_acquire(self) -> bool:
        """Take a slot iff one is free and nobody is queued ahead."""
        with self._lock:
            if self._free > 0 and not self._queue:
                self._free -= 1
                self._running += 1
                return True
            return False

    def acquire(self, timeout: float | None = None,
                token: CancelToken | None = None) -> float:
        """Block until a slot is granted; returns queue wait seconds.

        Raises:
            AdmissionRejected: the wait queue is already full.
            QueueWaitTimeout: no slot freed up within ``timeout``.
            QueryCancelled: ``token`` was cancelled while waiting.
        """
        with self._lock:
            if self._free > 0 and not self._queue:
                self._free -= 1
                self._running += 1
                return 0.0
            if len(self._queue) >= self.max_queue:
                raise AdmissionRejected(
                    f"queue full ({self.max_queue} waiting, "
                    f"{self._running} running)")
            waiter = _Waiter(token)
            self._queue.append(waiter)
        if token is not None:
            token.on_cancel(waiter.event.set)
        start = time.perf_counter()
        waiter.event.wait(timeout)
        with self._lock:
            if waiter.granted:
                return time.perf_counter() - start
            # Timed out or cancelled while queued: withdraw.
            try:
                self._queue.remove(waiter)
            except ValueError:
                # release() granted us the slot in the meantime —
                # keep it rather than leak it.
                if waiter.granted:
                    return time.perf_counter() - start
        if token is not None and token.cancelled:
            raise QueryCancelled("cancelled while queued")
        raise QueueWaitTimeout(
            f"no slot within {timeout:.3f}s "
            f"({self._running} running, {len(self._queue)} queued)")

    def release(self) -> None:
        """Return a slot; hands it to the oldest live waiter."""
        with self._lock:
            if self._running <= 0:
                raise AdmissionError("release() without acquire()")
            self._running -= 1
            while self._queue:
                waiter = self._queue.popleft()
                if waiter.token is not None and waiter.token.cancelled:
                    waiter.event.set()  # let it observe cancellation
                    continue
                waiter.granted = True
                self._running += 1
                waiter.event.set()
                return
            self._free += 1

    @contextmanager
    def slot(self, timeout: float | None = None,
             token: CancelToken | None = None):
        """``with controller.slot():`` acquire/release convenience."""
        self.acquire(timeout=timeout, token=token)
        try:
            yield self
        finally:
            self.release()


class ReadWriteLock:
    """Writer-preference readers/writer lock.

    Many SELECTs share the catalog concurrently; DML and reclustering
    take exclusive access. A waiting writer blocks *new* readers so
    a steady SELECT stream cannot starve DML.
    """

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    @contextmanager
    def read(self):
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write(self):
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()
