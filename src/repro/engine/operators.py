"""Physical operators.

Every operator is an iterable of :class:`~.chunk.Chunk` with a
``schema`` attribute. Leaves are :class:`Scan`; the rest wrap children.
Operators charge simulated time to the :class:`~.context.ExecContext`
so pruning savings show up as runtime improvements deterministically.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from ..errors import ExecutionError, PlanError
from ..expr import ast
from ..expr.eval import evaluate, evaluate_predicate
from ..expr.pruning import TriState
from ..pruning.base import ScanSet
from ..pruning.filter_pruning import FilterPruner
from ..pruning.join_pruning import JoinPruner, build_summary
from ..pruning.summaries import BloomFilter
from ..pruning.topk_pruning import Boundary, TopKPruner, rank_of
from ..storage.column import Column
from ..types import DataType, Schema
from .chunk import Chunk
from .context import ExecContext, ScanProfile


class Operator:
    """Base class: an iterable of chunks with a known output schema."""

    schema: Schema

    def __iter__(self) -> Iterator[Chunk]:
        raise NotImplementedError


class ChunkSource(Operator):
    """Wraps pre-built chunks (used in tests and by the warehouse)."""

    def __init__(self, schema: Schema, chunks: Iterable[Chunk]):
        self.schema = schema
        self._chunks = list(chunks)

    def __iter__(self) -> Iterator[Chunk]:
        return iter(self._chunks)


class MetadataAggregateSource(ChunkSource):
    """A one-row aggregate result computed purely from zone maps.

    ``SELECT COUNT(*) / MIN(x) / MAX(x) FROM t`` (no predicate, no
    grouping) never needs to touch data: row counts, null counts, and
    min/max are all in the metadata store. This is the extreme case of
    §2.1's "fast access to micro-partition metadata".
    """

    def __init__(self, schema: Schema, chunk: Chunk, table: str,
                 partitions_covered: int):
        super().__init__(schema, [chunk])
        self.table = table
        self.partitions_covered = partitions_covered


class EmptyOperator(Operator):
    """Produces no rows (result of sub-tree elimination, §2.1)."""

    def __init__(self, schema: Schema):
        self.schema = schema

    def __iter__(self) -> Iterator[Chunk]:
        return iter(())


class Scan(Operator):
    """Loads micro-partitions of one table, applying runtime pruning.

    The scan set arrives already compile-time pruned (and possibly
    ordered, §5.3). At runtime, before loading each partition the scan
    consults (a) attached top-k pruners — boundary checks, §5.2 — and
    (b) an optional deferred filter pruner (compile-time cutoff pushed
    the filter to the warehouse, §3.2).

    When ``ExecContext.scan_parallelism`` > 1 the scan fans partition
    loads out as morsels to a thread pool (the paper's execution
    engine scans surviving partitions in parallel, §2), with
    deterministic semantics: runtime-pruning decisions happen on the
    consumer thread in scan-set order, chunks are merged back in that
    same order, per-worker retry stats fold into the query profile as
    each morsel is consumed, and a failing load surfaces its typed
    error at the same position the serial scan would.

    Adaptive top-k boundary pruning parallelizes too (PR 8): the
    boundary is a shared tighten-only CAS, so workers re-check it per
    morsel at claim time (skipping loads the consumer's check will
    provably also skip) while the *accounted* check still runs on the
    consumer thread at the partition's scan-set position — where the
    boundary state is exactly what a serial scan would have seen,
    because the downstream TopK heap consumes chunks in that same
    order. Rows, order, typed errors, and every profile counter except
    the explicitly speculative ``prefetched_then_skipped`` pair are
    therefore bit-identical to serial execution; skip counts observed
    by workers can only exceed (never miss) the serial decisions.
    """

    def __init__(self, context: ExecContext, table: str, schema: Schema,
                 scan_set: ScanSet, profile: ScanProfile | None = None,
                 columns: Sequence[str] | None = None):
        self.context = context
        self.table = table
        self.schema = schema
        self.scan_set = scan_set
        self.columns = list(columns) if columns is not None else None
        self.profile = profile or context.profile.new_scan(table)
        if self.profile.total_partitions == 0:
            self.profile.total_partitions = len(scan_set)
        self.topk_pruners: list[TopKPruner] = []
        self.runtime_filter_pruner: FilterPruner | None = None
        #: SoA zone-map index for vectorized runtime pruning, attached
        #: by the compiler when vectorized pruning is enabled; runtime
        #: join-filter summaries and deferred filters classify against
        #: it in bulk instead of per-partition AST walks.
        self.stats_index = None
        #: lazily computed verdict codes of the deferred filter over
        #: the stats index (one kernel pass for the whole scan set).
        self._deferred_codes = None
        self._deferred_classified = False
        #: open trace span while the scan iterates (tracing only)
        self._span = None

    # -- runtime pruning hooks -------------------------------------------
    def attach_topk_pruner(self, pruner: TopKPruner) -> None:
        self.topk_pruners.append(pruner)

    def attach_deferred_filter(self, pruner: FilterPruner) -> None:
        self.runtime_filter_pruner = pruner

    def apply_join_pruning(self, pruner: JoinPruner) -> None:
        """Eagerly restrict the scan set with a build-side summary."""
        if pruner.index is None:
            pruner.index = self.stats_index
        result = pruner.prune(self.scan_set)
        if pruner.vector_checks:
            self.context.charge_prune_checks(pruner.vector_checks,
                                             vectorized=True)
        if pruner.fallback_checks:
            self.context.charge_prune_checks(pruner.fallback_checks)
        self.context.trace_event(
            "prune:join", table=self.table, before=result.before,
            after=result.after, checks=result.checks, mode=pruner.mode)
        self.scan_set = result.kept
        if self.profile.join_result is None:
            self.profile.join_result = result
        else:
            # Multiple joins pruning the same scan: merge counts.
            previous = self.profile.join_result
            previous.pruned_ids.extend(result.pruned_ids)
            previous.kept = result.kept
            previous.checks += result.checks

    # -- iteration ---------------------------------------------------------
    def __iter__(self) -> Iterator[Chunk]:
        workers = self._parallel_workers()
        self.profile.scan_parallelism = workers
        iterator = (self._iter_parallel(workers) if workers > 1
                    else self._iter_serial())
        if self.context.tracer is None:
            return iterator
        return self._iter_traced(iterator, workers)

    def _iter_traced(self, iterator: Iterator[Chunk],
                     workers: int) -> Iterator[Chunk]:
        """Wrap the scan in an explicitly-parented span.

        The span is ended in ``finally`` so a suspended-then-closed
        generator (LIMIT early termination) still records; a generator
        abandoned without closing is repaired by ``Tracer.finish``.

        While this scan iterates, the query's retry stats carry a
        trace hook so each serially-absorbed retry becomes a child
        event with its error class (parallel morsels retry on worker
        threads with private hook-free stats; the consumer emits one
        summary event per morsel instead).
        """
        span = self.context.start_span(
            f"scan:{self.table}", partitions_in=len(self.scan_set),
            workers=workers)
        self._span = span
        retry_stats = self.context.profile.retry_stats
        previous_hook = retry_stats.trace_hook

        def on_retry(error_class: str, delay_ms: float) -> None:
            self.context.trace_event("retry", parent=span,
                                     error=error_class,
                                     backoff_ms=delay_ms)

        retry_stats.trace_hook = on_retry
        try:
            yield from iterator
        finally:
            retry_stats.trace_hook = previous_hook
            profile = self.profile
            span.annotate(loaded=profile.partitions_loaded,
                          rows=profile.rows_scanned,
                          bytes=profile.bytes_scanned)
            if profile.early_terminated:
                span.annotate(early_terminated=True)
            if profile.topk_skipped:
                span.annotate(topk_skipped=profile.topk_skipped)
            if profile.topk_boundary_updates:
                span.annotate(
                    boundary_updates=profile.topk_boundary_updates)
            if profile.prefetched_then_skipped:
                span.annotate(
                    prefetched_then_skipped=profile
                    .prefetched_then_skipped)
            if profile.cache_hits or profile.cache_misses:
                span.annotate(cache_hits=profile.cache_hits,
                              cache_misses=profile.cache_misses)
            span.end()
            self._span = None

    @property
    def order_dependent(self) -> bool:
        """Single source of truth for "does runtime pruning decide per
        partition, mid-scan, whether to load?".

        True when top-k boundary pruners or a deferred runtime filter
        are attached. Such scans still parallelize and prefetch — the
        decisions are *monotone* (a boundary only tightens; a deferred
        verdict is a pure function of the zone map), so readahead
        re-validates them at claim time and surrenders anything a
        tightened boundary later skips. Both speculation gates
        (:meth:`_make_prefetcher` and the morsel loop's advisory
        checks) derive from this one predicate so they cannot drift.
        """
        return bool(self.topk_pruners) \
            or self.runtime_filter_pruner is not None

    def _parallel_workers(self) -> int:
        """Morsel workers this scan may use (1 = stay serial)."""
        workers = getattr(self.context, "scan_parallelism", 1)
        if workers <= 1 or len(self.scan_set) <= 1:
            return 1
        return min(workers, len(self.scan_set))

    def _make_prefetcher(self):
        """Async readahead for the serial scan path.

        Order-dependent scans (:attr:`order_dependent`) prefetch too:
        each fetch is re-validated against the current prune decision
        as it is issued, and a prefetched partition the boundary has
        since tightened past is dropped at consume time without
        charging the query (counted as prefetched-then-skipped). The
        parallel morsel loop needs no prefetcher — its bounded
        in-flight window *is* the readahead.
        """
        cache = self.context.cache
        if (cache is None or not cache.prefetch
                or len(self.scan_set) <= 1):
            return None
        from ..cache.prefetcher import Prefetcher

        window = max(4, self.context.scan_parallelism * 2)
        should_fetch = None
        if self.order_dependent:
            zone_maps = dict(self.scan_set.entries)

            def should_fetch(pid: int) -> bool:
                return not self._advisory_skip(pid, zone_maps[pid])

        return Prefetcher(
            cache, self.context.storage, self.scan_set.partition_ids,
            columns=self.columns, window=window,
            should_fetch=should_fetch)

    def _iter_serial(self) -> Iterator[Chunk]:
        entries = self.scan_set.entries
        cache = self.context.cache
        prefetcher = self._make_prefetcher()
        consumed = 0
        try:
            for partition_id, zone_map in entries:
                consumed += 1
                self.context.charge_metadata_lookups(1)
                if self._runtime_skip(partition_id, zone_map):
                    if prefetcher is not None:
                        self._account_prefetch_drop(
                            partition_id, *prefetcher.drop(partition_id))
                    continue
                if cache is not None:
                    prefetched = (prefetcher.claim(partition_id)
                                  if prefetcher is not None else False)
                    partition = cache.get(
                        partition_id, columns=self.columns,
                        record=not prefetched)
                    if prefetched:
                        # Readahead fetched it moments ago: the bytes
                        # were read from storage this query, so this
                        # counts as a miss (nothing saved) — just off
                        # the critical path.
                        cache.record_miss()
                    if partition is not None:
                        yield self._consume_partition(
                            partition_id, partition,
                            cache_hit=not prefetched,
                            prefetched=prefetched)
                        continue
                retry_stats = self.context.profile.retry_stats
                penalty_before = retry_stats.penalty_ms()
                partition = self.context.storage.load(
                    partition_id, columns=self.columns,
                    retry_stats=retry_stats)
                # Retry backoff and latency spikes absorbed by this
                # load slow the query down on the simulated clock.
                penalty = retry_stats.penalty_ms() - penalty_before
                if penalty:
                    self.context.charge_exec(penalty)
                if cache is not None:
                    self._trace_evictions(
                        cache.put(partition, self.columns))
                yield self._consume_partition(partition_id, partition)
        finally:
            if prefetcher is not None:
                prefetcher.close()
            self._record_boundary_updates()
            if consumed < len(entries):
                self.profile.early_terminated = True

    def _iter_parallel(self, workers: int) -> Iterator[Chunk]:
        from collections import deque
        from concurrent.futures import ThreadPoolExecutor

        from ..faults.retry import RetryStats

        entries = self.scan_set.entries
        storage = self.context.storage
        columns = self.columns
        cache = self.context.cache
        order_dependent = self.order_dependent

        def load_morsel(partition_id: int, zone_map, recheck: bool):
            # Private stats per morsel: retry attribution merges into
            # the query profile when the morsel is consumed, in order.
            # Cache lookups happen here on the worker thread (the
            # cache is thread-safe); profile accounting and trace
            # events stay on the consumer thread.
            if recheck and self._boundary_skip(partition_id, zone_map):
                # Claim-time re-check: the boundary tightened since
                # submission. By monotonicity the consumer's accounted
                # check will also skip this partition, so the load is
                # provably wasted — don't issue it.
                return None
            local = RetryStats()
            if cache is not None:
                cached = cache.get(partition_id, columns=columns)
                if cached is not None:
                    return cached, local, True, []
            partition = storage.load(partition_id, columns=columns,
                                     retry_stats=local)
            evicted = (cache.put(partition, columns)
                       if cache is not None else [])
            return partition, local, False, evicted

        executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="scan-morsel")
        window = workers * 2
        pending: deque = deque()
        submitted = 0
        completed = False
        try:
            while True:
                # Keep up to `window` morsels in flight. Runtime
                # pruning here is *advisory* only (counter- and
                # charge-free): it throttles speculation but every
                # entry still flows through the accounted check at its
                # consume position below.
                while submitted < len(entries) and len(pending) < window:
                    partition_id, zone_map = entries[submitted]
                    submitted += 1
                    future = None
                    if not (order_dependent and self._advisory_skip(
                            partition_id, zone_map)):
                        future = executor.submit(
                            load_morsel, partition_id, zone_map,
                            order_dependent)
                    pending.append((partition_id, zone_map, future))
                if not pending:
                    completed = submitted == len(entries)
                    break
                # Consume in submission order: the accounted pruning
                # decision runs here, where the shared boundary holds
                # exactly the state a serial scan would have seen
                # (the downstream heap has consumed precisely the
                # preceding partitions), so chunk order, skip/check
                # counters, simulated-clock charges, and the position
                # at which a failing partition raises all match serial
                # execution bit for bit.
                partition_id, zone_map, future = pending.popleft()
                self.context.charge_metadata_lookups(1)
                if self._runtime_skip(partition_id, zone_map):
                    if future is not None:
                        self._discard_morsel(partition_id, future)
                    continue
                result = future.result() if future is not None else None
                if result is None:
                    # The speculative path skipped the load but the
                    # accounted check kept the partition. Monotone
                    # boundaries make this unreachable; demand-load
                    # inline so correctness never rests on that proof.
                    result = load_morsel(partition_id, zone_map, False)
                partition, local, cache_hit, evicted = result
                penalty = local.penalty_ms()
                self.context.profile.retry_stats.absorb(local)
                if penalty:
                    self.context.charge_exec(penalty)
                if local.retries:
                    # Recorded here on the consumer thread — the
                    # tracer is single-threaded by design.
                    self.context.trace_event(
                        "retry", parent=self._span,
                        partition=partition_id, retries=local.retries,
                        backoff_ms=penalty)
                self._trace_evictions(evicted)
                yield self._consume_partition(partition_id, partition,
                                              cache_hit=cache_hit)
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
            self._record_boundary_updates()
            if not completed:
                self.profile.early_terminated = True

    def _consume_partition(self, partition_id: int, partition,
                           cache_hit: bool = False,
                           prefetched: bool = False) -> Chunk:
        """Charge and account one loaded partition, returning its chunk.

        ``partitions_loaded``/``rows_scanned``/``bytes_scanned`` keep
        their cache-independent meaning (what the scan consumed), so
        those counters are bit-identical cache-on vs cache-off; the
        cache's effect shows up in the ``cache_*`` counters, in
        ``IOStats.bytes_read`` (hits never touch storage), and on the
        simulated clock (hits charge the local-read cost).
        """
        nbytes = (partition.project_bytes(self.columns)
                  if self.columns is not None
                  else partition.nbytes())
        stats = self.context.storage.stats
        if cache_hit:
            self.context.charge_cached_load(nbytes)
            stats.record_cache_hit(nbytes)
            self.profile.cache_hits += 1
            self.profile.cache_bytes_saved += nbytes
            self.context.trace_event("cache:hit", parent=self._span,
                                     partition=partition_id,
                                     bytes=nbytes)
        else:
            self.context.charge_partition_load(nbytes)
            if self.context.cache is not None:
                stats.record_cache_miss()
                self.profile.cache_misses += 1
                if prefetched:
                    self.profile.prefetched_partitions += 1
        self.context.charge_rows(partition.row_count)
        self.profile.partitions_loaded += 1
        self.profile.rows_scanned += partition.row_count
        self.profile.bytes_scanned += nbytes
        chunk = Chunk.from_partition(partition)
        if self.columns is not None:
            chunk = chunk.select(self.columns)
        chunk.source_partition = partition_id
        return chunk

    def _trace_evictions(self, evicted: Sequence[int]) -> None:
        for pid in evicted:
            self.context.trace_event("cache:evict", parent=self._span,
                                     partition=pid)

    def _runtime_skip(self, partition_id: int, zone_map) -> bool:
        """The *accounted* runtime-prune decision for one partition.

        Runs exactly once per consumed entry, on the consumer thread,
        in scan-set order — serial and parallel scans therefore charge
        and count identically. Degraded entries (zone maps lost to
        metadata failures) skip the boundary checks entirely, fail
        open: a stats-free zone map can never prove a skip, and not
        counting it as a check keeps fleet pruning-ratio CDFs
        conditioned on actually-eligible partitions.
        """
        if partition_id not in self.scan_set.degraded_ids:
            for pruner in self.topk_pruners:
                vector_before = pruner.vector_checks
                skip = pruner.should_skip(zone_map, partition_id)
                self.context.charge_prune_checks(
                    1, vectorized=pruner.vector_checks > vector_before)
                self.profile.topk_checks += 1
                if skip:
                    self.profile.topk_skipped += 1
                    return True
        if self.runtime_filter_pruner is not None:
            verdict, vectorized = self._deferred_verdict(partition_id,
                                                         zone_map)
            self.context.charge_prune_checks(1, vectorized=vectorized)
            if verdict == TriState.NEVER:
                self._record_runtime_filter_prune()
                return True
        return False

    def _advisory_skip(self, partition_id: int, zone_map) -> bool:
        """Counter- and charge-free preview of :meth:`_runtime_skip`.

        Used where a serial scan performs no check at all — morsel
        submission and prefetch issue — to avoid speculative loads the
        accounted check will provably discard. Sound because runtime
        prune decisions are monotone: the boundary only tightens and
        deferred verdicts are pure functions of the zone map, so a
        skip here implies a skip at the accounted position.
        """
        if partition_id in self.scan_set.degraded_ids:
            return False
        for pruner in self.topk_pruners:
            if pruner.peek_skip(zone_map, partition_id):
                return True
        if self.runtime_filter_pruner is not None:
            verdict, _ = self._deferred_verdict(partition_id, zone_map)
            if verdict == TriState.NEVER:
                return True
        return False

    def _boundary_skip(self, partition_id: int, zone_map) -> bool:
        """Worker-thread claim-time boundary re-check (boundary only:
        deferred-filter verdicts are static and already previewed at
        submission). Counter-free; degraded entries never skip because
        their stats-free zone maps answer "best possible rank"."""
        for pruner in self.topk_pruners:
            if pruner.peek_skip(zone_map, partition_id):
                return True
        return False

    def _deferred_verdict(self, partition_id: int,
                          zone_map) -> "tuple[TriState, bool]":
        """Classify one partition against the deferred runtime filter.

        Returns ``(verdict, vectorized)``. The verdict is a pure
        function of the zone map, so the whole scan set pre-classifies
        in one kernel pass over the stats index on first use; entries
        the index cannot vouch for by zone-map identity fall back to
        the scalar AST walk (the differential oracle).
        """
        codes = self._deferred_classification()
        if codes is not None:
            index = self.stats_index
            row = index.row_of(partition_id)
            if row is not None and index.zone_map_at(row) is zone_map:
                from ..pruning.stats_index import _CODE_TO_TRISTATE

                verdict = _CODE_TO_TRISTATE[int(codes[row])]
                # The deferred pruner never detects fully-matching
                # (widening already happened); only NEVER matters.
                if verdict is TriState.ALWAYS:
                    verdict = TriState.MAYBE
                return verdict, True
        return self.runtime_filter_pruner.classify(zone_map), False

    def _deferred_classification(self):
        if not self._deferred_classified:
            self._deferred_classified = True
            index = self.stats_index
            pruner = self.runtime_filter_pruner
            if index is not None and len(index) and pruner is not None \
                    and pruner.widened == pruner.predicate:
                from ..pruning.stats_index import compile_pruning_kernel

                kernel = compile_pruning_kernel(pruner.predicate)
                if kernel is not None:
                    self._deferred_codes = kernel.classify(index)
        return self._deferred_codes

    def _discard_morsel(self, partition_id: int, future) -> None:
        """Drop a speculatively loaded morsel the accounted check
        skipped. A serial scan never loads this partition, so nothing
        is charged to the simulated clock, its retry stats are not
        absorbed, and a typed error it may have hit is swallowed; the
        wasted wire bytes surface as ``prefetched_then_skipped``."""
        if future.cancel():
            return
        try:
            result = future.result()
        except Exception:
            return
        if result is None:
            return
        partition = result[0]
        nbytes = (partition.project_bytes(self.columns)
                  if self.columns is not None else partition.nbytes())
        self._account_prefetch_drop(partition_id, 1, nbytes)

    def _account_prefetch_drop(self, partition_id: int, dropped: int,
                               nbytes: int) -> None:
        if not dropped:
            return
        self.profile.prefetched_then_skipped += dropped
        self.profile.prefetched_then_skipped_bytes += nbytes
        self.context.trace_event("prefetch:drop", parent=self._span,
                                 partition=partition_id, bytes=nbytes)

    def _record_boundary_updates(self) -> None:
        """Publish boundary-tightening totals into the scan profile
        (end of iteration; distinct pruners may share one boundary)."""
        seen: set[int] = set()
        total = 0
        for pruner in self.topk_pruners:
            boundary = pruner.boundary
            if id(boundary) in seen:
                continue
            seen.add(id(boundary))
            total += boundary.updates
        if total:
            self.profile.topk_boundary_updates = total

    def _record_runtime_filter_prune(self) -> None:
        result = self.profile.filter_result
        if result is not None:
            result.pruned_ids.append(-1)
        # If no compile-time pruning ran, runtime filter prunes are
        # still attributed to the filter technique.
        elif self.profile.filter_result is None:
            from ..pruning.base import PruneCategory, PruningResult

            self.profile.filter_result = PruningResult(
                technique=PruneCategory.FILTER,
                before=self.profile.total_partitions,
                kept=ScanSet(),
                pruned_ids=[-1],
            )


class Filter(Operator):
    """Row-level predicate application (WHERE)."""

    def __init__(self, context: ExecContext, child: Operator,
                 predicate: ast.Expr):
        self.context = context
        self.child = child
        self.predicate = predicate
        self.schema = child.schema
        #: micro-partitions that produced at least one qualifying row;
        #: feeds the filter predicate cache (§8.2)
        self.partitions_with_matches: set[int] = set()

    def __iter__(self) -> Iterator[Chunk]:
        for chunk in self.child:
            self.context.charge_rows(chunk.num_rows)
            mask = evaluate_predicate(self.predicate, chunk.columns,
                                      self.schema)
            filtered = chunk.filter(mask)
            filtered.source_partition = chunk.source_partition
            if filtered.num_rows:
                if chunk.source_partition is not None:
                    self.partitions_with_matches.add(
                        chunk.source_partition)
                yield filtered


class Project(Operator):
    """Computes output expressions (SELECT list)."""

    def __init__(self, context: ExecContext, child: Operator,
                 exprs: Sequence[ast.Expr], names: Sequence[str]):
        if len(exprs) != len(names):
            raise PlanError("projection exprs and names differ in length")
        self.context = context
        self.child = child
        self.exprs = list(exprs)
        self.names = [n.lower() for n in names]
        from ..types import Field

        self.schema = Schema(
            Field(name, expr.dtype(child.schema))
            for name, expr in zip(self.names, self.exprs))

    def __iter__(self) -> Iterator[Chunk]:
        for chunk in self.child:
            self.context.charge_rows(chunk.num_rows)
            columns = {
                name: evaluate(expr, chunk.columns, self.child.schema)
                for name, expr in zip(self.names, self.exprs)
            }
            out = Chunk(self.schema, columns)
            out.source_partition = chunk.source_partition
            yield out


class HashJoin(Operator):
    """Hash join with build-side summaries and probe-side pruning (§6).

    The *build* child is fully materialized into a hash table; its join
    keys are summarized, and — when the probe child bottoms out at a
    :class:`Scan` whose column feeds the join key directly — the
    summary prunes the probe scan set before a single probe partition
    is loaded. A Bloom filter additionally skips per-row hash-table
    probes (the classic bloom-join CPU saving).

    ``join_type``: ``"inner"`` or ``"left_outer"`` (probe side
    preserved; matches SQL LEFT JOIN with the left input as probe).
    """

    def __init__(self, context: ExecContext, probe: Operator,
                 build: Operator, probe_key: str, build_key: str,
                 join_type: str = "inner",
                 probe_scan: "Scan | None" = None,
                 probe_scan_column: str | None = None,
                 summary_kind: str = "rangeset",
                 use_bloom_row_filter: bool = True):
        if join_type not in ("inner", "left_outer"):
            raise PlanError(f"unsupported join type {join_type!r}")
        self.context = context
        self.probe = probe
        self.build = build
        self.probe_key = probe_key.lower()
        self.build_key = build_key.lower()
        self.join_type = join_type
        self.probe_scan = probe_scan
        self.probe_scan_column = (probe_scan_column or probe_key).lower()
        self.summary_kind = summary_kind
        self.use_bloom_row_filter = use_bloom_row_filter
        self.schema = probe.schema.concat(build.schema)
        self.bloom_probes_skipped = 0
        self.build_rows = 0

    def __iter__(self) -> Iterator[Chunk]:
        build_chunk, table = self._build_phase()
        yield from self._probe_phase(build_chunk, table)

    def _build_phase(self) -> tuple[Chunk, dict]:
        chunks = list(self.build)
        build_chunk = Chunk.concat(self.build.schema, chunks)
        self.build_rows = build_chunk.num_rows
        self.context.charge_rows(build_chunk.num_rows)
        key_column = build_chunk.column(self.build_key)
        table: dict[Any, list[int]] = {}
        for i in range(len(key_column)):
            if key_column.nulls[i]:
                continue  # NULL keys never join
            table.setdefault(key_column.values[i], []).append(i)
        summary = build_summary(
            (key_column.values[i] for i in range(len(key_column))
             if not key_column.nulls[i]),
            kind=self.summary_kind)
        self._bloom = None
        if self.use_bloom_row_filter:
            self._bloom = BloomFilter(expected_items=max(1, len(table)))
            for key in table:
                self._bloom.add(key)
        self._prune_probe_side(summary)
        return build_chunk, table

    def _prune_probe_side(self, summary) -> None:
        # Probe-side partition pruning is only sound when probe rows
        # are not preserved: a LEFT OUTER probe row must surface even
        # with no partner.
        if self.probe_scan is None or self.join_type != "inner":
            return
        pruner = JoinPruner(self.probe_scan_column, summary)
        self.probe_scan.apply_join_pruning(pruner)

    def _probe_phase(self, build_chunk: Chunk,
                     table: dict) -> Iterator[Chunk]:
        build_width = len(self.build.schema)
        for chunk in self.probe:
            self.context.charge_rows(chunk.num_rows)
            key_column = chunk.column(self.probe_key)
            probe_indices: list[int] = []
            build_indices: list[int] = []
            unmatched: list[int] = []
            for i in range(chunk.num_rows):
                if key_column.nulls[i]:
                    if self.join_type == "left_outer":
                        unmatched.append(i)
                    continue
                key = key_column.values[i]
                if self._bloom is not None and not \
                        self._bloom.might_contain(key):
                    self.bloom_probes_skipped += 1
                    if self.join_type == "left_outer":
                        unmatched.append(i)
                    continue
                matches = table.get(key)
                if matches:
                    for j in matches:
                        probe_indices.append(i)
                        build_indices.append(j)
                elif self.join_type == "left_outer":
                    unmatched.append(i)
            yield from self._emit(chunk, build_chunk, probe_indices,
                                  build_indices, unmatched, build_width)

    def _emit(self, probe_chunk: Chunk, build_chunk: Chunk,
              probe_indices: list[int], build_indices: list[int],
              unmatched: list[int], build_width: int) -> Iterator[Chunk]:
        pieces = []
        if probe_indices:
            probe_part = probe_chunk.take(np.asarray(probe_indices))
            build_part = build_chunk.take(np.asarray(build_indices))
            pieces.append(self._combine(probe_part, build_part))
        if unmatched:
            probe_part = probe_chunk.take(np.asarray(unmatched))
            null_build = {
                f.name: Column.all_null(f.dtype, len(unmatched))
                for f in self.build.schema
            }
            build_part = Chunk(self.build.schema, null_build)
            pieces.append(self._combine(probe_part, build_part))
        for piece in pieces:
            if piece.num_rows:
                yield piece

    def _combine(self, probe_part: Chunk, build_part: Chunk) -> Chunk:
        columns = dict(probe_part.columns)
        columns.update(build_part.columns)
        return Chunk(self.schema, columns)


@dataclass(frozen=True)
class AggSpec:
    """One aggregate in a GROUP BY: ``func(input) AS output``."""

    func: str                 #: count / count_star / sum / min / max / avg
    input: str | None         #: input column; None for count_star
    output: str

    def output_dtype(self, input_dtype: DataType | None) -> DataType:
        if self.func in ("count", "count_star"):
            return DataType.INTEGER
        if self.func == "avg":
            return DataType.DOUBLE
        if self.func in ("sum", "min", "max"):
            if input_dtype is None:
                raise PlanError(f"{self.func} requires an input column")
            return input_dtype
        raise PlanError(f"unknown aggregate {self.func!r}")


class _Accumulator:
    """Per-group aggregate state."""

    __slots__ = ("count", "count_star", "total", "lo", "hi")

    def __init__(self):
        self.count = 0
        self.count_star = 0
        self.total = 0
        self.lo = None
        self.hi = None

    def update(self, value: Any) -> None:
        self.count_star += 1
        if value is None:
            return
        self.count += 1
        if isinstance(value, (int, float, np.integer, np.floating)):
            self.total += value
        if self.lo is None or value < self.lo:
            self.lo = value
        if self.hi is None or value > self.hi:
            self.hi = value

    def result(self, func: str) -> Any:
        if func == "count_star":
            return self.count_star
        if func == "count":
            return self.count
        if func == "sum":
            return self.total if self.count else None
        if func == "min":
            return self.lo
        if func == "max":
            return self.hi
        if func == "avg":
            return self.total / self.count if self.count else None
        raise ExecutionError(f"unknown aggregate {func!r}")


class HashAggregate(Operator):
    """Hash aggregation (GROUP BY) with optional top-k awareness.

    When the downstream TopK orders by a grouping key (Figure 7d), the
    aggregate maintains its own heap of group keys and feeds the shared
    boundary: a scanned partition whose best possible key is worse than
    the current k-th best *group key* cannot introduce a result group.
    """

    def __init__(self, context: ExecContext, child: Operator,
                 group_keys: Sequence[str], aggs: Sequence[AggSpec],
                 topk_hint: "TopKGroupHint | None" = None):
        from ..types import Field

        self.context = context
        self.child = child
        self.group_keys = [k.lower() for k in group_keys]
        self.aggs = list(aggs)
        fields = [child.schema.field(k) for k in self.group_keys]
        for spec in self.aggs:
            input_dtype = (child.schema.dtype_of(spec.input)
                           if spec.input is not None else None)
            fields.append(Field(spec.output,
                                spec.output_dtype(input_dtype)))
        self.schema = Schema(fields)
        self.topk_hint = topk_hint

    def __iter__(self) -> Iterator[Chunk]:
        # Each aggregate tracks its own accumulator per group.
        groups: dict[tuple, list[_Accumulator]] = {}
        hint = self.topk_hint
        heap: list[tuple] = []
        for chunk in self.child:
            self.context.charge_rows(chunk.num_rows)
            key_columns = [chunk.column(k) for k in self.group_keys]
            agg_columns = [chunk.column(s.input) if s.input else None
                           for s in self.aggs]
            for i in range(chunk.num_rows):
                key = tuple(c.value_at(i) for c in key_columns)
                state = groups.get(key)
                if state is None:
                    state = [_Accumulator() for _ in self.aggs]
                    groups[key] = state
                    if hint is not None:
                        self._update_hint(heap, key, hint)
                for spec_index, column in enumerate(agg_columns):
                    value = (column.value_at(i)
                             if column is not None else 0)
                    state[spec_index].update(value)
        yield self._materialize(groups)

    def _update_hint(self, heap: list[tuple], key: tuple,
                     hint: "TopKGroupHint") -> None:
        key_value = key[hint.key_index]
        rank = rank_of(key_value, hint.desc)
        heapq.heappush(heap, rank)
        if len(heap) > hint.k:
            heapq.heappop(heap)
        if len(heap) == hint.k:
            hint.boundary.update(heap[0])

    def _materialize(self, groups: dict) -> Chunk:
        rows = []
        for key, state in groups.items():
            rows.append(tuple(key) + tuple(
                acc.result(spec.func)
                for spec, acc in zip(self.aggs, state)))
        return Chunk.from_rows(self.schema, rows)


@dataclass
class TopKGroupHint:
    """Wiring for top-k pruning through GROUP BY (Figure 7d)."""

    key_index: int        #: position of the ORDER BY column in group keys
    k: int
    desc: bool
    boundary: Boundary


@dataclass(frozen=True)
class SortKey:
    column: str
    desc: bool = False


class Sort(Operator):
    """Full materializing sort; NULLs last in either direction."""

    def __init__(self, context: ExecContext, child: Operator,
                 keys: Sequence[SortKey]):
        if not keys:
            raise PlanError("sort requires at least one key")
        self.context = context
        self.child = child
        self.keys = list(keys)
        self.schema = child.schema

    def __iter__(self) -> Iterator[Chunk]:
        chunks = list(self.child)
        merged = Chunk.concat(self.schema, chunks)
        self.context.charge_rows(merged.num_rows)
        columns = [merged.column(k.column) for k in self.keys]

        def row_rank(i: int) -> tuple:
            return tuple(
                rank_of(col.value_at(i), key.desc)
                for col, key in zip(columns, self.keys))

        order = sorted(range(merged.num_rows), key=row_rank, reverse=True)
        yield merged.take(np.asarray(order, dtype=np.int64))


class TopK(Operator):
    """Heap-based ORDER BY ... LIMIT k with boundary feedback (§5.2).

    Maintains a k-element heap over the ORDER BY key(s); whenever the
    heap is full, the *leading* key's rank of the k-th best row is
    published to the shared :class:`Boundary`, which the upstream scan
    uses to skip partitions (sound for multi-key orderings because a
    row whose leading rank is strictly worse than the k-th row's
    leading rank is lexicographically worse overall). Also records
    which micro-partition each surviving heap row came from, enabling
    the top-k predicate cache (§8.2).
    """

    def __init__(self, context: ExecContext, child: Operator,
                 order_column: "str | Sequence[SortKey]", k: int,
                 desc: bool = True, boundary: Boundary | None = None,
                 offset: int = 0):
        if k < 0 or offset < 0:
            raise PlanError("TopK k and offset must be non-negative")
        self.context = context
        self.child = child
        if isinstance(order_column, str):
            self.keys: list[SortKey] = [SortKey(order_column.lower(),
                                                desc)]
        else:
            self.keys = [SortKey(key.column.lower(), key.desc)
                         for key in order_column]
            if not self.keys:
                raise PlanError("TopK requires at least one sort key")
        self.order_column = self.keys[0].column
        self.desc = self.keys[0].desc
        self.k = k
        self.offset = offset
        self.boundary = boundary
        self.schema = child.schema
        self.contributing_partitions: set[int] = set()

    def __iter__(self) -> Iterator[Chunk]:
        keep = self.k + self.offset
        if keep == 0:
            return
        heap: list[tuple] = []  # (rank_tuple, seq, row, partition_id)
        seq = 0
        for chunk in self.child:
            self.context.charge_rows(chunk.num_rows)
            order_cols = [chunk.column(key.column)
                          for key in self.keys]
            source = chunk.source_partition
            for i in range(chunk.num_rows):
                rank = tuple(
                    rank_of(column.value_at(i), key.desc)
                    for column, key in zip(order_cols, self.keys))
                if len(heap) == keep and rank <= heap[0][0]:
                    continue
                seq += 1
                heapq.heappush(heap, (rank, seq, chunk.row_at(i), source))
                if len(heap) > keep:
                    heapq.heappop(heap)
                if len(heap) == keep and self.boundary is not None:
                    # publish only the leading key's component
                    self.boundary.update(heap[0][0][0])
        ordered = sorted(heap, key=lambda e: (e[0], -e[1]), reverse=True)
        selected = ordered[self.offset:]
        self.contributing_partitions = {
            e[3] for e in selected if e[3] is not None}
        rows = [e[2] for e in selected]
        yield Chunk.from_rows(self.schema, rows)


class Limit(Operator):
    """LIMIT k OFFSET m with early termination."""

    def __init__(self, context: ExecContext, child: Operator, k: int,
                 offset: int = 0):
        if k < 0 or offset < 0:
            raise PlanError("LIMIT k and offset must be non-negative")
        self.context = context
        self.child = child
        self.k = k
        self.offset = offset
        self.schema = child.schema

    def __iter__(self) -> Iterator[Chunk]:
        to_skip = self.offset
        remaining = self.k
        if remaining == 0:
            return
        for chunk in self.child:
            if to_skip:
                if chunk.num_rows <= to_skip:
                    to_skip -= chunk.num_rows
                    continue
                chunk = chunk.slice(to_skip, chunk.num_rows)
                to_skip = 0
            if chunk.num_rows > remaining:
                chunk = chunk.slice(0, remaining)
            remaining -= chunk.num_rows
            yield chunk
            if remaining == 0:
                return
