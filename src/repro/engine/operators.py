"""Physical operators.

Every operator is an iterable of :class:`~.chunk.Chunk` with a
``schema`` attribute. Leaves are :class:`Scan`; the rest wrap children.
Operators charge simulated time to the :class:`~.context.ExecContext`
so pruning savings show up as runtime improvements deterministically.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from ..errors import ExecutionError, PlanError
from ..expr import ast
from ..expr.eval import evaluate, evaluate_predicate
from ..expr.pruning import TriState
from ..pruning.base import ScanSet
from ..pruning.filter_pruning import FilterPruner
from ..pruning.join_pruning import JoinPruner, build_summary
from ..pruning.summaries import BloomFilter
from ..pruning.topk_pruning import Boundary, TopKPruner, rank_of
from ..storage.column import Column
from ..types import DataType, Schema
from .chunk import Chunk
from .context import ExecContext, ScanProfile


class Operator:
    """Base class: an iterable of chunks with a known output schema."""

    schema: Schema

    def __iter__(self) -> Iterator[Chunk]:
        raise NotImplementedError


class ChunkSource(Operator):
    """Wraps pre-built chunks (used in tests and by the warehouse)."""

    def __init__(self, schema: Schema, chunks: Iterable[Chunk]):
        self.schema = schema
        self._chunks = list(chunks)

    def __iter__(self) -> Iterator[Chunk]:
        return iter(self._chunks)


class MetadataAggregateSource(ChunkSource):
    """A one-row aggregate result computed purely from zone maps.

    ``SELECT COUNT(*) / MIN(x) / MAX(x) FROM t`` (no predicate, no
    grouping) never needs to touch data: row counts, null counts, and
    min/max are all in the metadata store. This is the extreme case of
    §2.1's "fast access to micro-partition metadata".
    """

    def __init__(self, schema: Schema, chunk: Chunk, table: str,
                 partitions_covered: int):
        super().__init__(schema, [chunk])
        self.table = table
        self.partitions_covered = partitions_covered


class EmptyOperator(Operator):
    """Produces no rows (result of sub-tree elimination, §2.1)."""

    def __init__(self, schema: Schema):
        self.schema = schema

    def __iter__(self) -> Iterator[Chunk]:
        return iter(())


class Scan(Operator):
    """Loads micro-partitions of one table, applying runtime pruning.

    The scan set arrives already compile-time pruned (and possibly
    ordered, §5.3). At runtime, before loading each partition the scan
    consults (a) attached top-k pruners — boundary checks, §5.2 — and
    (b) an optional deferred filter pruner (compile-time cutoff pushed
    the filter to the warehouse, §3.2).

    When ``ExecContext.scan_parallelism`` > 1 the scan fans partition
    loads out as morsels to a thread pool (the paper's execution
    engine scans surviving partitions in parallel, §2), with
    deterministic semantics: runtime-pruning decisions happen on the
    consumer thread in scan-set order, chunks are merged back in that
    same order, per-worker retry stats fold into the query profile as
    each morsel is consumed, and a failing load surfaces its typed
    error at the same position the serial scan would. Adaptive top-k
    boundary pruning stays serial — its skip decisions depend on
    results of earlier partitions.
    """

    def __init__(self, context: ExecContext, table: str, schema: Schema,
                 scan_set: ScanSet, profile: ScanProfile | None = None,
                 columns: Sequence[str] | None = None):
        self.context = context
        self.table = table
        self.schema = schema
        self.scan_set = scan_set
        self.columns = list(columns) if columns is not None else None
        self.profile = profile or context.profile.new_scan(table)
        if self.profile.total_partitions == 0:
            self.profile.total_partitions = len(scan_set)
        self.topk_pruners: list[TopKPruner] = []
        self.runtime_filter_pruner: FilterPruner | None = None
        #: open trace span while the scan iterates (tracing only)
        self._span = None

    # -- runtime pruning hooks -------------------------------------------
    def attach_topk_pruner(self, pruner: TopKPruner) -> None:
        self.topk_pruners.append(pruner)

    def attach_deferred_filter(self, pruner: FilterPruner) -> None:
        self.runtime_filter_pruner = pruner

    def apply_join_pruning(self, pruner: JoinPruner) -> None:
        """Eagerly restrict the scan set with a build-side summary."""
        result = pruner.prune(self.scan_set)
        self.context.charge_prune_checks(result.checks)
        self.context.trace_event(
            "prune:join", table=self.table, before=result.before,
            after=result.after, checks=result.checks)
        self.scan_set = result.kept
        if self.profile.join_result is None:
            self.profile.join_result = result
        else:
            # Multiple joins pruning the same scan: merge counts.
            previous = self.profile.join_result
            previous.pruned_ids.extend(result.pruned_ids)
            previous.kept = result.kept
            previous.checks += result.checks

    # -- iteration ---------------------------------------------------------
    def __iter__(self) -> Iterator[Chunk]:
        workers = self._parallel_workers()
        self.profile.scan_parallelism = workers
        iterator = (self._iter_parallel(workers) if workers > 1
                    else self._iter_serial())
        if self.context.tracer is None:
            return iterator
        return self._iter_traced(iterator, workers)

    def _iter_traced(self, iterator: Iterator[Chunk],
                     workers: int) -> Iterator[Chunk]:
        """Wrap the scan in an explicitly-parented span.

        The span is ended in ``finally`` so a suspended-then-closed
        generator (LIMIT early termination) still records; a generator
        abandoned without closing is repaired by ``Tracer.finish``.

        While this scan iterates, the query's retry stats carry a
        trace hook so each serially-absorbed retry becomes a child
        event with its error class (parallel morsels retry on worker
        threads with private hook-free stats; the consumer emits one
        summary event per morsel instead).
        """
        span = self.context.start_span(
            f"scan:{self.table}", partitions_in=len(self.scan_set),
            workers=workers)
        self._span = span
        retry_stats = self.context.profile.retry_stats
        previous_hook = retry_stats.trace_hook

        def on_retry(error_class: str, delay_ms: float) -> None:
            self.context.trace_event("retry", parent=span,
                                     error=error_class,
                                     backoff_ms=delay_ms)

        retry_stats.trace_hook = on_retry
        try:
            yield from iterator
        finally:
            retry_stats.trace_hook = previous_hook
            profile = self.profile
            span.annotate(loaded=profile.partitions_loaded,
                          rows=profile.rows_scanned,
                          bytes=profile.bytes_scanned)
            if profile.early_terminated:
                span.annotate(early_terminated=True)
            if profile.topk_skipped:
                span.annotate(topk_skipped=profile.topk_skipped)
            if profile.cache_hits or profile.cache_misses:
                span.annotate(cache_hits=profile.cache_hits,
                              cache_misses=profile.cache_misses)
            span.end()
            self._span = None

    def _parallel_workers(self) -> int:
        """Morsel workers this scan may use (1 = stay serial)."""
        workers = getattr(self.context, "scan_parallelism", 1)
        if workers <= 1 or len(self.scan_set) <= 1:
            return 1
        if self.topk_pruners:
            # The boundary tightens as partitions stream back;
            # prefetching ahead of it would load partitions a serial
            # scan provably skips. Keep the adaptive path sequential.
            return 1
        return min(workers, len(self.scan_set))

    def _make_prefetcher(self):
        """Async readahead for the serial scan path, when safe.

        Only scans whose load order is fully known up front prefetch:
        runtime pruning (top-k boundaries, deferred filters) decides
        per partition whether to load at all, and reading ahead of
        those decisions would fetch bytes a serial scan provably
        skips. The parallel morsel loop needs no prefetcher — its
        bounded in-flight window *is* the readahead.
        """
        cache = self.context.cache
        if (cache is None or not cache.prefetch
                or self.topk_pruners
                or self.runtime_filter_pruner is not None
                or len(self.scan_set) <= 1):
            return None
        from ..cache.prefetcher import Prefetcher

        window = max(4, self.context.scan_parallelism * 2)
        return Prefetcher(
            cache, self.context.storage, self.scan_set.partition_ids,
            columns=self.columns, window=window)

    def _iter_serial(self) -> Iterator[Chunk]:
        entries = self.scan_set.entries
        cache = self.context.cache
        prefetcher = self._make_prefetcher()
        consumed = 0
        try:
            for partition_id, zone_map in entries:
                consumed += 1
                self.context.charge_metadata_lookups(1)
                if self._runtime_skip(zone_map):
                    continue
                if cache is not None:
                    prefetched = (prefetcher.claim(partition_id)
                                  if prefetcher is not None else False)
                    partition = cache.get(
                        partition_id, columns=self.columns,
                        record=not prefetched)
                    if prefetched:
                        # Readahead fetched it moments ago: the bytes
                        # were read from storage this query, so this
                        # counts as a miss (nothing saved) — just off
                        # the critical path.
                        cache.record_miss()
                    if partition is not None:
                        yield self._consume_partition(
                            partition_id, partition,
                            cache_hit=not prefetched,
                            prefetched=prefetched)
                        continue
                retry_stats = self.context.profile.retry_stats
                penalty_before = retry_stats.penalty_ms()
                partition = self.context.storage.load(
                    partition_id, columns=self.columns,
                    retry_stats=retry_stats)
                # Retry backoff and latency spikes absorbed by this
                # load slow the query down on the simulated clock.
                penalty = retry_stats.penalty_ms() - penalty_before
                if penalty:
                    self.context.charge_exec(penalty)
                if cache is not None:
                    self._trace_evictions(
                        cache.put(partition, self.columns))
                yield self._consume_partition(partition_id, partition)
        finally:
            if prefetcher is not None:
                prefetcher.close()
            if consumed < len(entries):
                self.profile.early_terminated = True

    def _iter_parallel(self, workers: int) -> Iterator[Chunk]:
        from collections import deque
        from concurrent.futures import ThreadPoolExecutor

        from ..faults.retry import RetryStats

        entries = self.scan_set.entries
        storage = self.context.storage
        columns = self.columns
        cache = self.context.cache

        def load_morsel(partition_id: int):
            # Private stats per morsel: retry attribution merges into
            # the query profile when the morsel is consumed, in order.
            # Cache lookups happen here on the worker thread (the
            # cache is thread-safe); profile accounting and trace
            # events stay on the consumer thread.
            local = RetryStats()
            if cache is not None:
                cached = cache.get(partition_id, columns=columns)
                if cached is not None:
                    return cached, local, True, []
            partition = storage.load(partition_id, columns=columns,
                                     retry_stats=local)
            evicted = (cache.put(partition, columns)
                       if cache is not None else [])
            return partition, local, False, evicted

        executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="scan-morsel")
        window = workers * 2
        pending: deque = deque()
        submitted = 0
        completed = False
        try:
            while True:
                # Keep up to `window` morsels in flight; pruning and
                # charging happen here, on the consumer thread, in
                # scan-set order — identical to the serial scan.
                while submitted < len(entries) and len(pending) < window:
                    partition_id, zone_map = entries[submitted]
                    submitted += 1
                    self.context.charge_metadata_lookups(1)
                    if self._runtime_skip(zone_map):
                        continue
                    pending.append(
                        (partition_id,
                         executor.submit(load_morsel, partition_id)))
                if not pending:
                    completed = submitted == len(entries)
                    break
                # Consume in submission order: chunk order, profile
                # accounting, and the position at which a failing
                # partition raises all match serial execution.
                partition_id, future = pending.popleft()
                partition, local, cache_hit, evicted = future.result()
                penalty = local.penalty_ms()
                self.context.profile.retry_stats.absorb(local)
                if penalty:
                    self.context.charge_exec(penalty)
                if local.retries:
                    # Recorded here on the consumer thread — the
                    # tracer is single-threaded by design.
                    self.context.trace_event(
                        "retry", parent=self._span,
                        partition=partition_id, retries=local.retries,
                        backoff_ms=penalty)
                self._trace_evictions(evicted)
                yield self._consume_partition(partition_id, partition,
                                              cache_hit=cache_hit)
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
            if not completed:
                self.profile.early_terminated = True

    def _consume_partition(self, partition_id: int, partition,
                           cache_hit: bool = False,
                           prefetched: bool = False) -> Chunk:
        """Charge and account one loaded partition, returning its chunk.

        ``partitions_loaded``/``rows_scanned``/``bytes_scanned`` keep
        their cache-independent meaning (what the scan consumed), so
        those counters are bit-identical cache-on vs cache-off; the
        cache's effect shows up in the ``cache_*`` counters, in
        ``IOStats.bytes_read`` (hits never touch storage), and on the
        simulated clock (hits charge the local-read cost).
        """
        nbytes = (partition.project_bytes(self.columns)
                  if self.columns is not None
                  else partition.nbytes())
        stats = self.context.storage.stats
        if cache_hit:
            self.context.charge_cached_load(nbytes)
            stats.record_cache_hit(nbytes)
            self.profile.cache_hits += 1
            self.profile.cache_bytes_saved += nbytes
            self.context.trace_event("cache:hit", parent=self._span,
                                     partition=partition_id,
                                     bytes=nbytes)
        else:
            self.context.charge_partition_load(nbytes)
            if self.context.cache is not None:
                stats.record_cache_miss()
                self.profile.cache_misses += 1
                if prefetched:
                    self.profile.prefetched_partitions += 1
        self.context.charge_rows(partition.row_count)
        self.profile.partitions_loaded += 1
        self.profile.rows_scanned += partition.row_count
        self.profile.bytes_scanned += nbytes
        chunk = Chunk.from_partition(partition)
        if self.columns is not None:
            chunk = chunk.select(self.columns)
        chunk.source_partition = partition_id
        return chunk

    def _trace_evictions(self, evicted: Sequence[int]) -> None:
        for pid in evicted:
            self.context.trace_event("cache:evict", parent=self._span,
                                     partition=pid)

    def _runtime_skip(self, zone_map) -> bool:
        for pruner in self.topk_pruners:
            self.context.charge_prune_checks(1)
            self.profile.topk_checks += 1
            if pruner.should_skip(zone_map):
                self.profile.topk_skipped += 1
                return True
        if self.runtime_filter_pruner is not None:
            self.context.charge_prune_checks(1)
            verdict = self.runtime_filter_pruner.classify(zone_map)
            if verdict == TriState.NEVER:
                self._record_runtime_filter_prune()
                return True
        return False

    def _record_runtime_filter_prune(self) -> None:
        result = self.profile.filter_result
        if result is not None:
            result.pruned_ids.append(-1)
        # If no compile-time pruning ran, runtime filter prunes are
        # still attributed to the filter technique.
        elif self.profile.filter_result is None:
            from ..pruning.base import PruneCategory, PruningResult

            self.profile.filter_result = PruningResult(
                technique=PruneCategory.FILTER,
                before=self.profile.total_partitions,
                kept=ScanSet(),
                pruned_ids=[-1],
            )


class Filter(Operator):
    """Row-level predicate application (WHERE)."""

    def __init__(self, context: ExecContext, child: Operator,
                 predicate: ast.Expr):
        self.context = context
        self.child = child
        self.predicate = predicate
        self.schema = child.schema
        #: micro-partitions that produced at least one qualifying row;
        #: feeds the filter predicate cache (§8.2)
        self.partitions_with_matches: set[int] = set()

    def __iter__(self) -> Iterator[Chunk]:
        for chunk in self.child:
            self.context.charge_rows(chunk.num_rows)
            mask = evaluate_predicate(self.predicate, chunk.columns,
                                      self.schema)
            filtered = chunk.filter(mask)
            filtered.source_partition = chunk.source_partition
            if filtered.num_rows:
                if chunk.source_partition is not None:
                    self.partitions_with_matches.add(
                        chunk.source_partition)
                yield filtered


class Project(Operator):
    """Computes output expressions (SELECT list)."""

    def __init__(self, context: ExecContext, child: Operator,
                 exprs: Sequence[ast.Expr], names: Sequence[str]):
        if len(exprs) != len(names):
            raise PlanError("projection exprs and names differ in length")
        self.context = context
        self.child = child
        self.exprs = list(exprs)
        self.names = [n.lower() for n in names]
        from ..types import Field

        self.schema = Schema(
            Field(name, expr.dtype(child.schema))
            for name, expr in zip(self.names, self.exprs))

    def __iter__(self) -> Iterator[Chunk]:
        for chunk in self.child:
            self.context.charge_rows(chunk.num_rows)
            columns = {
                name: evaluate(expr, chunk.columns, self.child.schema)
                for name, expr in zip(self.names, self.exprs)
            }
            out = Chunk(self.schema, columns)
            out.source_partition = chunk.source_partition
            yield out


class HashJoin(Operator):
    """Hash join with build-side summaries and probe-side pruning (§6).

    The *build* child is fully materialized into a hash table; its join
    keys are summarized, and — when the probe child bottoms out at a
    :class:`Scan` whose column feeds the join key directly — the
    summary prunes the probe scan set before a single probe partition
    is loaded. A Bloom filter additionally skips per-row hash-table
    probes (the classic bloom-join CPU saving).

    ``join_type``: ``"inner"`` or ``"left_outer"`` (probe side
    preserved; matches SQL LEFT JOIN with the left input as probe).
    """

    def __init__(self, context: ExecContext, probe: Operator,
                 build: Operator, probe_key: str, build_key: str,
                 join_type: str = "inner",
                 probe_scan: "Scan | None" = None,
                 probe_scan_column: str | None = None,
                 summary_kind: str = "rangeset",
                 use_bloom_row_filter: bool = True):
        if join_type not in ("inner", "left_outer"):
            raise PlanError(f"unsupported join type {join_type!r}")
        self.context = context
        self.probe = probe
        self.build = build
        self.probe_key = probe_key.lower()
        self.build_key = build_key.lower()
        self.join_type = join_type
        self.probe_scan = probe_scan
        self.probe_scan_column = (probe_scan_column or probe_key).lower()
        self.summary_kind = summary_kind
        self.use_bloom_row_filter = use_bloom_row_filter
        self.schema = probe.schema.concat(build.schema)
        self.bloom_probes_skipped = 0
        self.build_rows = 0

    def __iter__(self) -> Iterator[Chunk]:
        build_chunk, table = self._build_phase()
        yield from self._probe_phase(build_chunk, table)

    def _build_phase(self) -> tuple[Chunk, dict]:
        chunks = list(self.build)
        build_chunk = Chunk.concat(self.build.schema, chunks)
        self.build_rows = build_chunk.num_rows
        self.context.charge_rows(build_chunk.num_rows)
        key_column = build_chunk.column(self.build_key)
        table: dict[Any, list[int]] = {}
        for i in range(len(key_column)):
            if key_column.nulls[i]:
                continue  # NULL keys never join
            table.setdefault(key_column.values[i], []).append(i)
        summary = build_summary(
            (key_column.values[i] for i in range(len(key_column))
             if not key_column.nulls[i]),
            kind=self.summary_kind)
        self._bloom = None
        if self.use_bloom_row_filter:
            self._bloom = BloomFilter(expected_items=max(1, len(table)))
            for key in table:
                self._bloom.add(key)
        self._prune_probe_side(summary)
        return build_chunk, table

    def _prune_probe_side(self, summary) -> None:
        # Probe-side partition pruning is only sound when probe rows
        # are not preserved: a LEFT OUTER probe row must surface even
        # with no partner.
        if self.probe_scan is None or self.join_type != "inner":
            return
        pruner = JoinPruner(self.probe_scan_column, summary)
        self.probe_scan.apply_join_pruning(pruner)

    def _probe_phase(self, build_chunk: Chunk,
                     table: dict) -> Iterator[Chunk]:
        build_width = len(self.build.schema)
        for chunk in self.probe:
            self.context.charge_rows(chunk.num_rows)
            key_column = chunk.column(self.probe_key)
            probe_indices: list[int] = []
            build_indices: list[int] = []
            unmatched: list[int] = []
            for i in range(chunk.num_rows):
                if key_column.nulls[i]:
                    if self.join_type == "left_outer":
                        unmatched.append(i)
                    continue
                key = key_column.values[i]
                if self._bloom is not None and not \
                        self._bloom.might_contain(key):
                    self.bloom_probes_skipped += 1
                    if self.join_type == "left_outer":
                        unmatched.append(i)
                    continue
                matches = table.get(key)
                if matches:
                    for j in matches:
                        probe_indices.append(i)
                        build_indices.append(j)
                elif self.join_type == "left_outer":
                    unmatched.append(i)
            yield from self._emit(chunk, build_chunk, probe_indices,
                                  build_indices, unmatched, build_width)

    def _emit(self, probe_chunk: Chunk, build_chunk: Chunk,
              probe_indices: list[int], build_indices: list[int],
              unmatched: list[int], build_width: int) -> Iterator[Chunk]:
        pieces = []
        if probe_indices:
            probe_part = probe_chunk.take(np.asarray(probe_indices))
            build_part = build_chunk.take(np.asarray(build_indices))
            pieces.append(self._combine(probe_part, build_part))
        if unmatched:
            probe_part = probe_chunk.take(np.asarray(unmatched))
            null_build = {
                f.name: Column.all_null(f.dtype, len(unmatched))
                for f in self.build.schema
            }
            build_part = Chunk(self.build.schema, null_build)
            pieces.append(self._combine(probe_part, build_part))
        for piece in pieces:
            if piece.num_rows:
                yield piece

    def _combine(self, probe_part: Chunk, build_part: Chunk) -> Chunk:
        columns = dict(probe_part.columns)
        columns.update(build_part.columns)
        return Chunk(self.schema, columns)


@dataclass(frozen=True)
class AggSpec:
    """One aggregate in a GROUP BY: ``func(input) AS output``."""

    func: str                 #: count / count_star / sum / min / max / avg
    input: str | None         #: input column; None for count_star
    output: str

    def output_dtype(self, input_dtype: DataType | None) -> DataType:
        if self.func in ("count", "count_star"):
            return DataType.INTEGER
        if self.func == "avg":
            return DataType.DOUBLE
        if self.func in ("sum", "min", "max"):
            if input_dtype is None:
                raise PlanError(f"{self.func} requires an input column")
            return input_dtype
        raise PlanError(f"unknown aggregate {self.func!r}")


class _Accumulator:
    """Per-group aggregate state."""

    __slots__ = ("count", "count_star", "total", "lo", "hi")

    def __init__(self):
        self.count = 0
        self.count_star = 0
        self.total = 0
        self.lo = None
        self.hi = None

    def update(self, value: Any) -> None:
        self.count_star += 1
        if value is None:
            return
        self.count += 1
        if isinstance(value, (int, float, np.integer, np.floating)):
            self.total += value
        if self.lo is None or value < self.lo:
            self.lo = value
        if self.hi is None or value > self.hi:
            self.hi = value

    def result(self, func: str) -> Any:
        if func == "count_star":
            return self.count_star
        if func == "count":
            return self.count
        if func == "sum":
            return self.total if self.count else None
        if func == "min":
            return self.lo
        if func == "max":
            return self.hi
        if func == "avg":
            return self.total / self.count if self.count else None
        raise ExecutionError(f"unknown aggregate {func!r}")


class HashAggregate(Operator):
    """Hash aggregation (GROUP BY) with optional top-k awareness.

    When the downstream TopK orders by a grouping key (Figure 7d), the
    aggregate maintains its own heap of group keys and feeds the shared
    boundary: a scanned partition whose best possible key is worse than
    the current k-th best *group key* cannot introduce a result group.
    """

    def __init__(self, context: ExecContext, child: Operator,
                 group_keys: Sequence[str], aggs: Sequence[AggSpec],
                 topk_hint: "TopKGroupHint | None" = None):
        from ..types import Field

        self.context = context
        self.child = child
        self.group_keys = [k.lower() for k in group_keys]
        self.aggs = list(aggs)
        fields = [child.schema.field(k) for k in self.group_keys]
        for spec in self.aggs:
            input_dtype = (child.schema.dtype_of(spec.input)
                           if spec.input is not None else None)
            fields.append(Field(spec.output,
                                spec.output_dtype(input_dtype)))
        self.schema = Schema(fields)
        self.topk_hint = topk_hint

    def __iter__(self) -> Iterator[Chunk]:
        # Each aggregate tracks its own accumulator per group.
        groups: dict[tuple, list[_Accumulator]] = {}
        hint = self.topk_hint
        heap: list[tuple] = []
        for chunk in self.child:
            self.context.charge_rows(chunk.num_rows)
            key_columns = [chunk.column(k) for k in self.group_keys]
            agg_columns = [chunk.column(s.input) if s.input else None
                           for s in self.aggs]
            for i in range(chunk.num_rows):
                key = tuple(c.value_at(i) for c in key_columns)
                state = groups.get(key)
                if state is None:
                    state = [_Accumulator() for _ in self.aggs]
                    groups[key] = state
                    if hint is not None:
                        self._update_hint(heap, key, hint)
                for spec_index, column in enumerate(agg_columns):
                    value = (column.value_at(i)
                             if column is not None else 0)
                    state[spec_index].update(value)
        yield self._materialize(groups)

    def _update_hint(self, heap: list[tuple], key: tuple,
                     hint: "TopKGroupHint") -> None:
        key_value = key[hint.key_index]
        rank = rank_of(key_value, hint.desc)
        heapq.heappush(heap, rank)
        if len(heap) > hint.k:
            heapq.heappop(heap)
        if len(heap) == hint.k:
            hint.boundary.update(heap[0])

    def _materialize(self, groups: dict) -> Chunk:
        rows = []
        for key, state in groups.items():
            rows.append(tuple(key) + tuple(
                acc.result(spec.func)
                for spec, acc in zip(self.aggs, state)))
        return Chunk.from_rows(self.schema, rows)


@dataclass
class TopKGroupHint:
    """Wiring for top-k pruning through GROUP BY (Figure 7d)."""

    key_index: int        #: position of the ORDER BY column in group keys
    k: int
    desc: bool
    boundary: Boundary


@dataclass(frozen=True)
class SortKey:
    column: str
    desc: bool = False


class Sort(Operator):
    """Full materializing sort; NULLs last in either direction."""

    def __init__(self, context: ExecContext, child: Operator,
                 keys: Sequence[SortKey]):
        if not keys:
            raise PlanError("sort requires at least one key")
        self.context = context
        self.child = child
        self.keys = list(keys)
        self.schema = child.schema

    def __iter__(self) -> Iterator[Chunk]:
        chunks = list(self.child)
        merged = Chunk.concat(self.schema, chunks)
        self.context.charge_rows(merged.num_rows)
        columns = [merged.column(k.column) for k in self.keys]

        def row_rank(i: int) -> tuple:
            return tuple(
                rank_of(col.value_at(i), key.desc)
                for col, key in zip(columns, self.keys))

        order = sorted(range(merged.num_rows), key=row_rank, reverse=True)
        yield merged.take(np.asarray(order, dtype=np.int64))


class TopK(Operator):
    """Heap-based ORDER BY ... LIMIT k with boundary feedback (§5.2).

    Maintains a k-element heap over the ORDER BY key(s); whenever the
    heap is full, the *leading* key's rank of the k-th best row is
    published to the shared :class:`Boundary`, which the upstream scan
    uses to skip partitions (sound for multi-key orderings because a
    row whose leading rank is strictly worse than the k-th row's
    leading rank is lexicographically worse overall). Also records
    which micro-partition each surviving heap row came from, enabling
    the top-k predicate cache (§8.2).
    """

    def __init__(self, context: ExecContext, child: Operator,
                 order_column: "str | Sequence[SortKey]", k: int,
                 desc: bool = True, boundary: Boundary | None = None,
                 offset: int = 0):
        if k < 0 or offset < 0:
            raise PlanError("TopK k and offset must be non-negative")
        self.context = context
        self.child = child
        if isinstance(order_column, str):
            self.keys: list[SortKey] = [SortKey(order_column.lower(),
                                                desc)]
        else:
            self.keys = [SortKey(key.column.lower(), key.desc)
                         for key in order_column]
            if not self.keys:
                raise PlanError("TopK requires at least one sort key")
        self.order_column = self.keys[0].column
        self.desc = self.keys[0].desc
        self.k = k
        self.offset = offset
        self.boundary = boundary
        self.schema = child.schema
        self.contributing_partitions: set[int] = set()

    def __iter__(self) -> Iterator[Chunk]:
        keep = self.k + self.offset
        if keep == 0:
            return
        heap: list[tuple] = []  # (rank_tuple, seq, row, partition_id)
        seq = 0
        for chunk in self.child:
            self.context.charge_rows(chunk.num_rows)
            order_cols = [chunk.column(key.column)
                          for key in self.keys]
            source = chunk.source_partition
            for i in range(chunk.num_rows):
                rank = tuple(
                    rank_of(column.value_at(i), key.desc)
                    for column, key in zip(order_cols, self.keys))
                if len(heap) == keep and rank <= heap[0][0]:
                    continue
                seq += 1
                heapq.heappush(heap, (rank, seq, chunk.row_at(i), source))
                if len(heap) > keep:
                    heapq.heappop(heap)
                if len(heap) == keep and self.boundary is not None:
                    # publish only the leading key's component
                    self.boundary.update(heap[0][0][0])
        ordered = sorted(heap, key=lambda e: (e[0], -e[1]), reverse=True)
        selected = ordered[self.offset:]
        self.contributing_partitions = {
            e[3] for e in selected if e[3] is not None}
        rows = [e[2] for e in selected]
        yield Chunk.from_rows(self.schema, rows)


class Limit(Operator):
    """LIMIT k OFFSET m with early termination."""

    def __init__(self, context: ExecContext, child: Operator, k: int,
                 offset: int = 0):
        if k < 0 or offset < 0:
            raise PlanError("LIMIT k and offset must be non-negative")
        self.context = context
        self.child = child
        self.k = k
        self.offset = offset
        self.schema = child.schema

    def __iter__(self) -> Iterator[Chunk]:
        to_skip = self.offset
        remaining = self.k
        if remaining == 0:
            return
        for chunk in self.child:
            if to_skip:
                if chunk.num_rows <= to_skip:
                    to_skip -= chunk.num_rows
                    continue
                chunk = chunk.slice(to_skip, chunk.num_rows)
                to_skip = 0
            if chunk.num_rows > remaining:
                chunk = chunk.slice(0, remaining)
            remaining -= chunk.num_rows
            yield chunk
            if remaining == 0:
                return
