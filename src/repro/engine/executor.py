"""Driving a physical operator tree to completion."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..types import Schema
from .chunk import Chunk
from .context import ExecContext, QueryProfile
from .operators import Operator


@dataclass
class ExecutionResult:
    """Materialized query output plus its profile."""

    schema: Schema
    rows: list[tuple[Any, ...]]
    profile: QueryProfile

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    def column(self, name: str) -> list[Any]:
        index = self.schema.index_of(name)
        return [row[index] for row in self.rows]


def execute(root: Operator, context: ExecContext) -> ExecutionResult:
    """Pull the operator tree to exhaustion and materialize rows."""
    rows: list[tuple[Any, ...]] = []
    for chunk in root:
        rows.extend(chunk.to_rows())
    return ExecutionResult(schema=root.schema, rows=rows,
                           profile=context.profile)


def collect_chunks(root: Operator) -> list[Chunk]:
    """Materialize the raw chunk stream (testing helper)."""
    return list(root)
