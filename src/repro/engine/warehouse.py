"""Virtual warehouse simulation: parallel scan-set execution (§2, §4.4).

A virtual warehouse is a fleet of shared-nothing workers; the scan set
is striped across them and the query's simulated runtime is the slowest
worker's time. This module reproduces the paper's §4.4 observation:
without LIMIT pruning, a LIMIT-k query on an n-worker warehouse reads
at least n partitions — each worker starts one — "even though 1 might
have been enough".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..expr import ast
from ..expr.eval import evaluate_predicate
from ..pruning.base import ScanSet
from ..storage.storage_layer import StorageLayer
from ..types import Schema


@dataclass
class WorkerReport:
    """Outcome of one simulated parallel scan."""

    workers: int
    partitions_loaded: int
    rows_produced: int
    runtime_ms: float
    rounds: int = 0
    per_worker_loads: list[int] = field(default_factory=list)


class Warehouse:
    """A pool of ``n_workers`` simulated compute nodes."""

    def __init__(self, storage: StorageLayer, n_workers: int = 8):
        if n_workers < 1:
            raise ValueError("a warehouse needs at least one worker")
        self.storage = storage
        self.n_workers = n_workers

    def stripe(self, scan_set: ScanSet) -> list[ScanSet]:
        """Round-robin assignment of partitions to workers."""
        stripes: list[list] = [[] for _ in range(self.n_workers)]
        for i, entry in enumerate(scan_set.entries):
            stripes[i % self.n_workers].append(entry)
        return [ScanSet(stripe) for stripe in stripes]

    def scan_runtime_ms(self, scan_set: ScanSet,
                        columns: Sequence[str] | None = None) -> float:
        """Simulated runtime of scanning a scan set in parallel.

        Each worker's time is the sum of its partitions' load + CPU
        costs; the query takes as long as the slowest worker.
        """
        cost_model = self.storage.cost_model
        worker_times = []
        for stripe in self.stripe(scan_set):
            total = 0.0
            for partition_id, zone_map in stripe:
                total += self.storage.load_cost_ms(partition_id, columns)
                total += cost_model.scan_cost(zone_map.row_count)
            worker_times.append(total)
        return max(worker_times) if worker_times else 0.0

    def run_limit_scan(self, scan_set: ScanSet, schema: Schema, k: int,
                       predicate: ast.Expr | None = None) -> WorkerReport:
        """Simulate LIMIT-k execution without LIMIT pruning.

        Workers proceed in lockstep rounds; in each round every worker
        with partitions left loads its next one and counts qualifying
        rows. Execution halts at the end of the first round in which
        the global row count reaches ``k``. This models the paper's
        ⌈k/n⌉ observation: even tiny LIMITs read ≥ n partitions on an
        n-worker warehouse.
        """
        stripes = [s.entries for s in self.stripe(scan_set)]
        cost_model = self.storage.cost_model
        worker_times = [0.0] * self.n_workers
        per_worker_loads = [0] * self.n_workers
        rows_found = 0
        partitions_loaded = 0
        rounds = 0
        depth = max((len(s) for s in stripes), default=0)
        for round_index in range(depth):
            if rows_found >= k:
                break
            rounds += 1
            for worker, stripe in enumerate(stripes):
                if round_index >= len(stripe):
                    continue
                partition_id, zone_map = stripe[round_index]
                partition = self.storage.load(partition_id)
                worker_times[worker] += cost_model.load_cost(
                    partition.nbytes())
                worker_times[worker] += cost_model.scan_cost(
                    partition.row_count)
                per_worker_loads[worker] += 1
                partitions_loaded += 1
                if predicate is None:
                    rows_found += partition.row_count
                else:
                    mask = evaluate_predicate(
                        predicate, partition.columns(), schema)
                    rows_found += int(mask.sum())
        return WorkerReport(
            workers=self.n_workers,
            partitions_loaded=partitions_loaded,
            rows_produced=min(rows_found, k),
            runtime_ms=max(worker_times) if worker_times else 0.0,
            rounds=rounds,
            per_worker_loads=per_worker_loads,
        )
