"""Execution context, simulated clock, and query profiling.

The profiler records exactly the quantities the paper's evaluation
plots: per-scan partition counts before/after each pruning technique,
fully-matching partitions, rows scanned, and a deterministic simulated
runtime derived from the storage cost model.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..faults.retry import RetryStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..cache.partition_cache import PartitionCache
    from ..obs.trace import Span, Tracer
from ..pruning.base import PruneCategory, PruningResult
from ..pruning.flow import FlowRecord
from ..pruning.limit_pruning import LimitPruneReport
from ..storage.metadata_store import MetadataStore
from ..storage.storage_layer import StorageLayer


@dataclass
class ScanProfile:
    """Pruning and I/O accounting for one table scan."""

    table: str
    total_partitions: int = 0
    filter_result: Optional[PruningResult] = None
    #: secondary-sketch pruning pass (pruning/sketches.py), applied
    #: right after filter pruning on the compile-time scan set.
    sketch_result: Optional[PruningResult] = None
    join_result: Optional[PruningResult] = None
    limit_report: Optional[LimitPruneReport] = None
    topk_checks: int = 0
    topk_skipped: int = 0
    #: successful tightenings of this scan's top-k boundary (shared
    #: CAS updates published by the downstream TopK / GROUP BY heap).
    topk_boundary_updates: int = 0
    #: partitions speculatively read ahead (prefetcher or parallel
    #: morsel window) that a later, tighter runtime-prune decision
    #: then skipped. Wasted wire bytes, never charged to the query;
    #: allowed to differ from a serial scan (which reads ahead
    #: nothing), unlike every other counter here.
    prefetched_then_skipped: int = 0
    prefetched_then_skipped_bytes: int = 0
    partitions_loaded: int = 0
    rows_scanned: int = 0
    #: estimated bytes read from the loaded partitions (column sizes)
    bytes_scanned: int = 0
    early_terminated: bool = False
    filter_eligible: bool = False
    #: the predicate had at least one sketch-probeable conjunct
    #: (independent of whether any sketches were actually present)
    sketch_eligible: bool = False
    #: pruned-partition attribution by sketch kind ("ngram"/"member")
    sketch_pruned_by_kind: dict = field(default_factory=dict)
    #: a per-query-shape skip set restricted this scan (§8.2 layer)
    skip_set_hit: bool = False
    #: partitions removed by the skip-set hit
    skip_set_pruned: int = 0
    #: columns the (simplified) filter predicate references — the
    #: workload signal the recluster advisor mines (which columns are
    #: hot, and how well zone maps prune on them). Empty when the scan
    #: has no prunable predicate.
    filter_columns: tuple[str, ...] = ()
    #: this scan's scan set came from the *predicate* cache (§8.2);
    #: distinct from the warehouse-local *data* cache counters below.
    cache_hit: bool = False
    #: partitions served from the warehouse-local data cache (§2)
    cache_hits: int = 0
    #: partitions that had to be fetched from object storage
    cache_misses: int = 0
    #: bytes the data cache kept off the object-store wire
    cache_bytes_saved: int = 0
    #: cache misses satisfied by this scan's own async readahead
    #: (bytes were still read from storage, but off the critical path)
    prefetched_partitions: int = 0
    #: the scan was answered entirely from the metadata store
    metadata_only: bool = False
    #: partitions whose metadata could not be fetched; they were
    #: scanned unconditionally instead of being pruned (fail open)
    degraded_partitions: int = 0
    #: metadata-read retries absorbed while building this scan set
    metadata_retries: int = 0
    metadata_backoff_ms: float = 0.0
    #: how filter pruning classified this scan's partitions:
    #: "vectorized" (one bulk kernel pass), "fallback" (per-partition
    #: AST walk), or "mixed" (bulk pass with per-partition exceptions,
    #: e.g. degraded zone maps). Empty when no filter pruning ran.
    pruning_mode: str = ""
    #: wall-clock milliseconds spent classifying partitions (real
    #: time, not the simulated cost-model clock).
    pruning_ms: float = 0.0
    #: worker threads the scan actually fanned morsels out to.
    scan_parallelism: int = 1

    @property
    def degraded(self) -> bool:
        """True when this scan lost pruning for some partitions."""
        return self.degraded_partitions > 0

    @property
    def fully_matching_ids(self) -> list[int]:
        if self.filter_result is None:
            return []
        return list(self.filter_result.fully_matching_ids)

    @property
    def partitions_pruned(self) -> int:
        """Partitions removed by any technique (not merely unread)."""
        pruned = 0
        for result in (self.filter_result, self.sketch_result,
                       self.join_result):
            if result is not None:
                pruned += result.pruned
        pruned += self.skip_set_pruned
        if self.limit_report is not None:
            pruned += self.limit_report.result.pruned
        pruned += self.topk_skipped
        return pruned

    def pruning_results(self) -> list[PruningResult]:
        """All per-technique results, synthesizing entries for top-k
        skips and skip-set hits (which have no pruner of their own)."""
        results = []
        if self.filter_result is not None:
            results.append(self.filter_result)
        if self.sketch_result is not None:
            results.append(self.sketch_result)
        if self.skip_set_pruned:
            from ..pruning.base import ScanSet

            sketch_pruned = (self.sketch_result.pruned
                             if self.sketch_result is not None else 0)
            filter_pruned = (self.filter_result.pruned
                             if self.filter_result is not None else 0)
            results.append(PruningResult(
                technique=PruneCategory.SKETCH,
                before=(self.total_partitions - filter_pruned
                        - sketch_pruned),
                kept=ScanSet(),
                pruned_ids=[-1] * self.skip_set_pruned,
            ))
        if self.join_result is not None:
            results.append(self.join_result)
        if self.limit_report is not None:
            results.append(self.limit_report.result)
        if self.topk_checks:
            from ..pruning.base import ScanSet

            entering = (self.total_partitions
                        - sum(r.pruned for r in results))
            results.append(PruningResult(
                technique=PruneCategory.TOPK,
                before=entering,
                kept=ScanSet(),
                pruned_ids=[-1] * self.topk_skipped,
                checks=self.topk_checks,
            ))
        return results


@dataclass
class QueryProfile:
    """Whole-query pruning and timing summary."""

    query_id: str = ""
    scans: list[ScanProfile] = field(default_factory=list)
    compile_ms: float = 0.0
    exec_ms: float = 0.0
    limit_eligible: bool = False
    topk_eligible: bool = False
    join_eligible: bool = False
    #: True when this query executed a rebound plan-cache template
    #: instead of compiling cold (repro.plancache).
    plan_cache_hit: bool = False
    #: True when the plan cache was consulted for this query at all
    #: (hit or miss); False when the cache is disabled or bypassed.
    plan_cache_checked: bool = False
    #: write-ahead-log records this statement appended (DML under
    #: durability; always 0 for SELECTs and with durability off).
    wal_appends: int = 0
    #: framed bytes those appends wrote to the WAL.
    wal_bytes: int = 0
    #: retries/backoff/latency absorbed below this query (storage reads
    #: attribute into it directly; metadata retries are folded in from
    #: the scan profiles).
    retry_stats: RetryStats = field(default_factory=RetryStats)
    #: root trace span when the query ran with tracing enabled
    #: (see :mod:`repro.obs.trace`); None otherwise.
    trace: "Optional[Span]" = None

    @property
    def total_ms(self) -> float:
        return self.compile_ms + self.exec_ms

    @property
    def degraded(self) -> bool:
        """True when any scan ran without metadata for some partitions."""
        return any(s.degraded for s in self.scans)

    @property
    def degraded_partitions(self) -> int:
        return sum(s.degraded_partitions for s in self.scans)

    @property
    def total_retries(self) -> int:
        """Retries absorbed anywhere below this query (storage + metadata)."""
        return self.retry_stats.retries + sum(s.metadata_retries
                                              for s in self.scans)

    @property
    def total_backoff_ms(self) -> float:
        return self.retry_stats.backoff_ms + sum(s.metadata_backoff_ms
                                                 for s in self.scans)

    @property
    def total_partitions(self) -> int:
        return sum(s.total_partitions for s in self.scans)

    @property
    def data_cache_hits(self) -> int:
        return sum(s.cache_hits for s in self.scans)

    @property
    def data_cache_misses(self) -> int:
        return sum(s.cache_misses for s in self.scans)

    @property
    def data_cache_bytes_saved(self) -> int:
        return sum(s.cache_bytes_saved for s in self.scans)

    @property
    def data_cache_hit_ratio(self) -> float:
        lookups = self.data_cache_hits + self.data_cache_misses
        return self.data_cache_hits / lookups if lookups else 0.0

    @property
    def partitions_loaded(self) -> int:
        return sum(s.partitions_loaded for s in self.scans)

    @property
    def topk_boundary_updates(self) -> int:
        return sum(s.topk_boundary_updates for s in self.scans)

    @property
    def prefetched_then_skipped(self) -> int:
        return sum(s.prefetched_then_skipped for s in self.scans)

    @property
    def prefetched_then_skipped_bytes(self) -> int:
        return sum(s.prefetched_then_skipped_bytes for s in self.scans)

    @property
    def partitions_pruned(self) -> int:
        return sum(s.partitions_pruned for s in self.scans)

    @property
    def pruning_time(self) -> float:
        """Wall-clock ms spent classifying partitions, across scans."""
        return sum(s.pruning_ms for s in self.scans)

    @property
    def scan_parallelism(self) -> int:
        """Widest worker fan-out any scan of this query used."""
        return max((s.scan_parallelism for s in self.scans), default=1)

    def new_scan(self, table: str) -> ScanProfile:
        profile = ScanProfile(table=table)
        self.scans.append(profile)
        return profile

    def flow_record(self) -> FlowRecord:
        """Condense this query into a :class:`FlowRecord` (Figure 11)."""
        results = [r for scan in self.scans
                   for r in scan.pruning_results()]
        eligible = {
            PruneCategory.FILTER: any(s.filter_eligible
                                      for s in self.scans),
            PruneCategory.SKETCH: any(s.sketch_eligible
                                      for s in self.scans),
            PruneCategory.LIMIT: self.limit_eligible,
            PruneCategory.TOPK: self.topk_eligible,
            PruneCategory.JOIN: self.join_eligible,
        }
        final = self.total_partitions - self.partitions_pruned
        return FlowRecord.from_results(
            self.query_id, self.total_partitions, results,
            eligible=eligible, final_partitions=final)

    def metrics_export(self) -> dict[str, float]:
        """Flat numeric view of this profile for the service-layer
        metrics registry (:mod:`repro.service.metrics`).

        Keys are stable metric names; values are plain numbers, so a
        registry can feed counters/histograms without knowing the
        profile's structure.
        """
        return {
            "compile_ms": self.compile_ms,
            "exec_ms": self.exec_ms,
            "total_ms": self.total_ms,
            "partitions_total": float(self.total_partitions),
            "partitions_loaded": float(self.partitions_loaded),
            "partitions_pruned": float(self.partitions_pruned),
            "rows_scanned": float(sum(s.rows_scanned
                                      for s in self.scans)),
            "bytes_scanned": float(sum(s.bytes_scanned
                                       for s in self.scans)),
            "scans": float(len(self.scans)),
            "retries": float(self.total_retries),
            "retry_backoff_ms": self.total_backoff_ms,
            "injected_latency_ms": self.retry_stats.injected_latency_ms,
            "degraded": 1.0 if self.degraded else 0.0,
            "partitions_degraded": float(self.degraded_partitions),
            "pruning_time_ms": self.pruning_time,
            "scans_vectorized": float(sum(
                1 for s in self.scans
                if s.pruning_mode == "vectorized")),
            "sketch_pruned": float(sum(
                s.sketch_result.pruned for s in self.scans
                if s.sketch_result is not None)),
            "sketch_checks": float(sum(
                s.sketch_result.checks for s in self.scans
                if s.sketch_result is not None)),
            "skip_set_hits": float(sum(
                1 for s in self.scans if s.skip_set_hit)),
            "skip_set_pruned": float(sum(
                s.skip_set_pruned for s in self.scans)),
            "scan_parallelism": float(self.scan_parallelism),
            "data_cache_hits": float(self.data_cache_hits),
            "data_cache_misses": float(self.data_cache_misses),
            "data_cache_bytes_saved": float(self.data_cache_bytes_saved),
            "topk_boundary_updates": float(self.topk_boundary_updates),
            "prefetched_then_skipped": float(
                self.prefetched_then_skipped),
            "prefetched_then_skipped_bytes": float(
                self.prefetched_then_skipped_bytes),
            "plan_cache_hits": 1.0 if self.plan_cache_hit else 0.0,
            "plan_cache_misses": 1.0 if (self.plan_cache_checked
                                         and not self.plan_cache_hit)
            else 0.0,
            "wal_appends": float(self.wal_appends),
            "wal_bytes": float(self.wal_bytes),
        }

    def resilience_summary(self) -> str:
        """Human-readable retry/degradation report for this query."""
        lines = [f"retries: {self.total_retries} "
                 f"(backoff {self.total_backoff_ms:.2f} ms, "
                 f"injected latency "
                 f"{self.retry_stats.injected_latency_ms:.2f} ms)"]
        by_class = self.retry_stats.snapshot()
        classes = sorted(k.split(".", 1)[1] for k in by_class
                         if k.startswith("retries."))
        if classes:
            detail = ", ".join(
                f"{name}={int(by_class[f'retries.{name}'])}"
                for name in classes)
            lines.append(f"retried errors: {detail}")
        if self.degraded:
            degraded = [f"{s.table}({s.degraded_partitions})"
                        for s in self.scans if s.degraded]
            lines.append(
                f"DEGRADED: pruning unavailable for "
                f"{self.degraded_partitions} partition(s) — scanned "
                f"without metadata: {', '.join(degraded)}")
        else:
            lines.append("degraded: no")
        return "\n".join(lines)

    def pruning_summary(self) -> str:
        """Human-readable per-scan pruning report."""
        lines = []
        for scan in self.scans:
            parts = [f"scan {scan.table}: {scan.total_partitions} parts"]
            if scan.filter_result is not None:
                parts.append(
                    f"filter -> {scan.filter_result.after}"
                    f" (fm={len(scan.fully_matching_ids)})")
            if scan.sketch_result is not None:
                parts.append(f"sketch -> {scan.sketch_result.after}")
            if scan.skip_set_hit:
                parts.append(
                    f"skip-set -> -{scan.skip_set_pruned}")
            if scan.join_result is not None:
                parts.append(f"join -> {scan.join_result.after}")
            if scan.limit_report is not None:
                parts.append(
                    f"limit[{scan.limit_report.outcome.value}] -> "
                    f"{scan.limit_report.result.after}")
            if scan.topk_skipped:
                parts.append(f"topk skipped {scan.topk_skipped}")
            if scan.topk_boundary_updates:
                parts.append(
                    f"boundary updates {scan.topk_boundary_updates}")
            parts.append(f"loaded {scan.partitions_loaded}")
            if scan.degraded:
                parts.append(
                    f"DEGRADED ({scan.degraded_partitions} without "
                    f"metadata)")
            lines.append(", ".join(parts))
        lines.append(f"simulated time: {self.total_ms:.2f} ms "
                     f"(compile {self.compile_ms:.2f} ms)")
        return "\n".join(lines)


#: shared no-op context manager returned by :meth:`ExecContext.span`
#: when tracing is off — allocated once so the untraced hot path costs
#: a single attribute check, not an object per call.
_NULL_CM = nullcontext(None)


class ExecContext:
    """Shared state for one query execution."""

    def __init__(self, storage: StorageLayer,
                 metadata: MetadataStore | None = None,
                 query_id: str = "",
                 scan_parallelism: int = 1,
                 tracer: "Optional[Tracer]" = None,
                 cache: "Optional[PartitionCache]" = None):
        self.storage = storage
        self.metadata = metadata
        self.cost_model = storage.cost_model
        self.profile = QueryProfile(query_id=query_id)
        #: optional warehouse-local data cache scans route loads through
        #: (per-cluster when running under a :class:`WarehousePool`).
        self.cache = cache
        #: worker threads table scans may fan morsels out to (1 =
        #: serial execution; typically the warehouse cluster size).
        self.scan_parallelism = max(1, int(scan_parallelism))
        #: per-query tracer (single-threaded; morsel workers must not
        #: touch it — the consumer thread records on their behalf).
        self.tracer = tracer
        #: the span runtime operators parent their scan spans under
        #: (set by the catalog around the execute phase).
        self.exec_span: "Optional[Span]" = None

    # -- tracing hooks (no-ops when no tracer is attached) ---------------
    def span(self, name: str, **attrs):
        """Context manager recording a well-nested span, or a shared
        no-op when tracing is off."""
        if self.tracer is None:
            return _NULL_CM
        return self.tracer.span(name, **attrs)

    def start_span(self, name: str, **attrs) -> "Optional[Span]":
        """Open an explicitly-parented runtime span under the execute
        phase (generator-safe; caller must ``end()`` it). Returns None
        when tracing is off."""
        if self.tracer is None:
            return None
        return self.tracer.start_span(name, parent=self.exec_span,
                                      **attrs)

    def trace_event(self, name: str, parent: "Optional[Span]" = None,
                    **attrs) -> None:
        """Record a zero-duration trace event (no-op when untraced)."""
        if self.tracer is not None:
            self.tracer.event(name, parent=parent or self.exec_span,
                              **attrs)

    # -- simulated clock -------------------------------------------------
    def charge_compile(self, ms: float) -> None:
        self.profile.compile_ms += ms

    def charge_exec(self, ms: float) -> None:
        self.profile.exec_ms += ms

    def charge_partition_load(self, nbytes: int) -> None:
        self.charge_exec(self.cost_model.load_cost(nbytes))

    def charge_cached_load(self, nbytes: int) -> None:
        """Charge a data-cache hit: local read, no object-store trip."""
        self.charge_exec(self.cost_model.cached_load_cost(nbytes))

    def charge_rows(self, rows: int) -> None:
        self.charge_exec(self.cost_model.scan_cost(rows))

    def charge_prune_checks(self, checks: int,
                            at_compile_time: bool = False,
                            vectorized: bool = False) -> None:
        rate = (self.cost_model.vectorized_prune_check_ms if vectorized
                else self.cost_model.prune_check_ms)
        ms = checks * rate
        if at_compile_time:
            self.charge_compile(ms)
        else:
            self.charge_exec(ms)

    def charge_metadata_lookups(self, lookups: int,
                                at_compile_time: bool = False) -> None:
        ms = lookups * self.cost_model.metadata_lookup_ms
        if at_compile_time:
            self.charge_compile(ms)
        else:
            self.charge_exec(ms)
