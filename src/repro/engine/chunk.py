"""Chunks: the unit of data flowing between operators."""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from ..errors import SchemaError
from ..storage.column import Column
from ..storage.micropartition import MicroPartition
from ..types import Schema


class Chunk:
    """A batch of rows in columnar form."""

    __slots__ = ("schema", "columns", "num_rows", "source_partition")

    def __init__(self, schema: Schema, columns: Mapping[str, Column]):
        #: id of the micro-partition this chunk came from, or None once
        #: an operator (join, aggregate) destroys provenance.
        self.source_partition: int | None = None
        normalized = {name.lower(): col for name, col in columns.items()}
        if set(normalized) != set(schema.names()):
            raise SchemaError(
                f"chunk columns {sorted(normalized)} do not match schema "
                f"{schema.names()}")
        lengths = {len(col) for col in normalized.values()}
        if len(lengths) > 1:
            raise SchemaError(f"ragged chunk: lengths {sorted(lengths)}")
        self.schema = schema
        self.columns = normalized
        self.num_rows = lengths.pop() if lengths else 0

    @classmethod
    def from_partition(cls, partition: MicroPartition) -> "Chunk":
        return cls(partition.schema, partition.columns())

    @classmethod
    def empty(cls, schema: Schema) -> "Chunk":
        columns = {f.name: Column.from_pylist(f.dtype, [])
                   for f in schema}
        return cls(schema, columns)

    @classmethod
    def from_rows(cls, schema: Schema,
                  rows: Sequence[Sequence[Any]]) -> "Chunk":
        # One zip transposes all columns in C instead of a Python
        # row loop per column.
        transposed = zip(*rows) if rows else [()] * len(schema.fields)
        columns = {
            f.name: Column.from_pylist(f.dtype, list(values))
            for f, values in zip(schema, transposed)
        }
        return cls(schema, columns)

    def column(self, name: str) -> Column:
        try:
            return self.columns[name.lower()]
        except KeyError:
            raise SchemaError(f"chunk has no column {name!r}") from None

    def filter(self, mask: np.ndarray) -> "Chunk":
        return Chunk(self.schema,
                     {n: c.filter(mask) for n, c in self.columns.items()})

    def take(self, indices: np.ndarray) -> "Chunk":
        return Chunk(self.schema,
                     {n: c.take(indices) for n, c in self.columns.items()})

    def slice(self, start: int, stop: int) -> "Chunk":
        return Chunk(self.schema,
                     {n: c.slice(start, stop)
                      for n, c in self.columns.items()})

    def select(self, names: Sequence[str]) -> "Chunk":
        schema = self.schema.select(names)
        return Chunk(schema, {n.lower(): self.column(n) for n in names})

    @classmethod
    def concat(cls, schema: Schema,
               chunks: Sequence["Chunk"]) -> "Chunk":
        if not chunks:
            return cls.empty(schema)
        columns = {
            f.name: Column.concat([c.columns[f.name] for c in chunks])
            for f in schema
        }
        return cls(schema, columns)

    def to_rows(self) -> list[tuple[Any, ...]]:
        cols = [self.columns[f.name].to_pylist() for f in self.schema]
        if not cols:
            return []
        return list(zip(*cols))

    def row_at(self, i: int) -> tuple[Any, ...]:
        return tuple(self.columns[f.name].value_at(i)
                     for f in self.schema)

    def __repr__(self) -> str:
        return f"Chunk(rows={self.num_rows}, cols={self.schema.names()})"
