"""Vectorized, pipelined query execution engine.

Operators are Python iterators over :class:`~.chunk.Chunk` objects —
one chunk per micro-partition at the leaves. The pull model gives two
properties the paper's techniques need:

* **early termination** — a LIMIT that stops pulling stops the scan
  from loading further partitions;
* **runtime feedback** — the TopK operator shares a
  :class:`~repro.pruning.topk_pruning.Boundary` with its upstream scan,
  which consults it before loading each partition (§5.2's "flexible
  execution engine capable of passing information both horizontally and
  vertically").

Execution costs are simulated deterministically through
:class:`~.context.ExecContext` using the storage layer's cost model.
"""

from .chunk import Chunk
from .context import ExecContext, QueryProfile, ScanProfile
from .operators import (
    Scan,
    Filter,
    Project,
    HashJoin,
    HashAggregate,
    AggSpec,
    Sort,
    SortKey,
    TopK,
    Limit,
)
from .executor import execute, ExecutionResult
from .warehouse import Warehouse, WorkerReport

__all__ = [
    "Chunk",
    "ExecContext",
    "QueryProfile",
    "ScanProfile",
    "Scan",
    "Filter",
    "Project",
    "HashJoin",
    "HashAggregate",
    "AggSpec",
    "Sort",
    "SortKey",
    "TopK",
    "Limit",
    "execute",
    "ExecutionResult",
    "Warehouse",
    "WorkerReport",
]
