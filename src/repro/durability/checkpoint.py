"""Atomic catalog checkpoints keyed by WAL sequence number.

A checkpoint is one snapshot directory written by
:func:`repro.persistence.save_catalog` under ``checkpoints/``::

    checkpoints/
        ckpt-000000000042/     <- manifest.json carries wal_seqno=42
        .tmp-ckpt-...          <- in-flight writes (ignored, cleaned)

Every checkpoint is written into a fresh temp directory and published
with a single ``os.rename`` — it either exists completely or not at
all, so a crash at any point during checkpointing can never damage a
previous snapshot. The newest *valid* checkpoint wins at recovery;
older ones are pruned once a newer one is safely published.
"""

from __future__ import annotations

import os
import shutil
from dataclasses import dataclass
from pathlib import Path

from ..faults.crash import CrashInjector

__all__ = ["CheckpointInfo", "CheckpointManager"]

_PREFIX = "ckpt-"
_TMP_PREFIX = ".tmp-"


@dataclass(frozen=True)
class CheckpointInfo:
    """One published checkpoint: its WAL high-water mark and path."""

    seqno: int
    path: Path


class CheckpointManager:
    """Writes, lists, and prunes atomic catalog snapshots."""

    def __init__(self, root: str | Path, *,
                 crash_injector: CrashInjector | None = None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.crash_injector = crash_injector
        #: checkpoints published by this process
        self.written = 0
        # A crash mid-checkpoint leaves a .tmp-* directory behind;
        # it was never published, so it is dead weight — drop it.
        for stale in self.root.glob(f"{_TMP_PREFIX}*"):
            shutil.rmtree(stale, ignore_errors=True)

    @staticmethod
    def _dirname(seqno: int) -> str:
        return f"{_PREFIX}{seqno:012d}"

    # ------------------------------------------------------------------
    def list(self) -> list[CheckpointInfo]:
        """Valid checkpoints, oldest first."""
        found = []
        for entry in self.root.iterdir():
            if not entry.is_dir() or not entry.name.startswith(_PREFIX):
                continue
            try:
                seqno = int(entry.name[len(_PREFIX):])
            except ValueError:
                continue
            if not (entry / "manifest.json").exists():
                continue  # unpublishable leftovers; never valid
            found.append(CheckpointInfo(seqno, entry))
        found.sort(key=lambda info: info.seqno)
        return found

    def newest(self) -> CheckpointInfo | None:
        checkpoints = self.list()
        return checkpoints[-1] if checkpoints else None

    # ------------------------------------------------------------------
    def write(self, catalog, seqno: int) -> CheckpointInfo:
        """Snapshot ``catalog`` as the checkpoint for WAL ``seqno``.

        Crash points: ``mid-checkpoint`` fires after the snapshot files
        are written but before the publishing rename (the checkpoint
        does not exist yet); ``post-rename`` fires after publication
        but before the caller truncates the WAL (replay filters the
        already-checkpointed records by seqno, so nothing double-
        applies).
        """
        from ..persistence import save_catalog

        final = self.root / self._dirname(seqno)
        tmp = self.root / f"{_TMP_PREFIX}{self._dirname(seqno)}"
        if tmp.exists():
            shutil.rmtree(tmp)
        save_catalog(catalog, tmp, extra_manifest={"wal_seqno": seqno})
        injector = self.crash_injector
        if injector is not None:
            injector.crashpoint("mid-checkpoint")
        if final.exists():
            shutil.rmtree(final)  # idempotent re-checkpoint at seqno
        os.rename(tmp, final)
        if injector is not None:
            injector.crashpoint("post-rename")
        self.written += 1
        return CheckpointInfo(seqno, final)

    def prune(self, keep: int = 1) -> int:
        """Delete all but the newest ``keep`` checkpoints."""
        if keep < 1:
            raise ValueError("keep must be >= 1")
        victims = self.list()[:-keep]
        for info in victims:
            shutil.rmtree(info.path, ignore_errors=True)
        return len(victims)
