"""Logical WAL record payloads: JSON in, catalog objects out.

Records are *logical redo* records: instead of binary page images they
carry the schema and full row contents of every partition a mutation
added, plus the ids of the partitions it removed. Payloads are plain
JSON — no pickling anywhere on the durability path, matching the
persistence layer's format discipline — with ``DATE`` values encoded
as ISO strings and decoded back through the schema's
:class:`~repro.types.DataType`.

Partition ids are recorded explicitly and re-assigned verbatim on
replay (``MicroPartition.from_rows(..., partition_id=...)``), so a
recovered catalog reproduces the crashed process's partition ids,
contents, and checksums exactly — recovery is bit-identical, not just
row-equal.
"""

from __future__ import annotations

import datetime as _dt
from typing import Any, Iterable, Sequence

from ..storage.micropartition import MicroPartition
from ..storage.table import Table
from ..types import DataType, Field, Schema

__all__ = [
    "create_record",
    "decode_partitions",
    "decode_schema",
    "drop_record",
    "encode_schema",
    "insert_record",
    "rewrite_record",
]


# ----------------------------------------------------------------------
# Schema
# ----------------------------------------------------------------------
def encode_schema(schema: Schema) -> list[list[str]]:
    return [[f.name, f.dtype.value] for f in schema]


def decode_schema(data: Sequence[Sequence[str]]) -> Schema:
    return Schema(Field(name, DataType(dtype)) for name, dtype in data)


# ----------------------------------------------------------------------
# Row values
# ----------------------------------------------------------------------
def _encode_value(value: Any) -> Any:
    if isinstance(value, _dt.date):
        return value.isoformat()
    return value


def _decode_value(value: Any, dtype: DataType) -> Any:
    if value is None:
        return None
    if dtype == DataType.DATE:
        return _dt.date.fromisoformat(value)
    return value


def _encode_rows(rows: Iterable[Sequence[Any]]) -> list[list[Any]]:
    return [[_encode_value(v) for v in row] for row in rows]


def _decode_rows(schema: Schema,
                 rows: Iterable[Sequence[Any]]) -> list[list[Any]]:
    dtypes = [f.dtype for f in schema]
    return [[_decode_value(v, t) for v, t in zip(row, dtypes)]
            for row in rows]


# ----------------------------------------------------------------------
# Partitions
# ----------------------------------------------------------------------
def _encode_partitions(partitions: Iterable[MicroPartition]
                       ) -> list[dict[str, Any]]:
    return [{"id": p.partition_id, "rows": _encode_rows(p.to_rows())}
            for p in partitions]


def decode_partitions(schema: Schema,
                      specs: Iterable[dict[str, Any]]
                      ) -> list[MicroPartition]:
    """Rebuild partitions with their original ids and row contents."""
    return [MicroPartition.from_rows(
        schema, _decode_rows(schema, spec["rows"]),
        partition_id=int(spec["id"])) for spec in specs]


# ----------------------------------------------------------------------
# Record constructors (one per committed mutation kind)
# ----------------------------------------------------------------------
def create_record(table: Table) -> dict[str, Any]:
    """CREATE TABLE: schema plus the initial partition layout."""
    return {
        "op": "create",
        "table": table.name,
        "schema": encode_schema(table.schema),
        "partitions": _encode_partitions(table.partitions),
    }


def insert_record(table_name: str,
                  partitions: Sequence[MicroPartition]
                  ) -> dict[str, Any]:
    """INSERT: the freshly built partitions appended to the table."""
    return {
        "op": "insert",
        "table": table_name,
        "partitions": _encode_partitions(partitions),
    }


def rewrite_record(table_name: str, kind: str,
                   removed_ids: Sequence[int],
                   partitions: Sequence[MicroPartition],
                   columns: Sequence[str] | None = None
                   ) -> dict[str, Any]:
    """DELETE / UPDATE / RECLUSTER: a partition-wise rewrite.

    ``kind`` labels the mutation for the predicate-cache invalidation
    hooks replay must re-run; ``columns`` names the rewritten columns
    for ``kind == "update"``.
    """
    record: dict[str, Any] = {
        "op": "rewrite",
        "table": table_name,
        "kind": kind,
        "removed": list(removed_ids),
        "partitions": _encode_partitions(partitions),
    }
    if columns is not None:
        record["columns"] = list(columns)
    return record


def drop_record(table_name: str) -> dict[str, Any]:
    return {"op": "drop", "table": table_name}
