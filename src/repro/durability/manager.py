"""DurabilityManager: the WAL + checkpoint pair behind one catalog.

Commit protocol (log-before-apply):

1. the catalog builds the logical redo record for a mutation that
   definitely changes state;
2. :meth:`DurabilityManager.log` appends it to the WAL behind the
   flush barrier (crash points ``pre-append`` / ``mid-append`` /
   ``post-append-pre-apply`` live here);
3. only then does the catalog apply the mutation in memory.

Recovery therefore has exactly two legal outcomes per mutation: the
record is absent (crash before the barrier — pre-commit state) or
intact (crash after — replay reproduces the post-commit state). There
is no third state, which is precisely what the crash sweep asserts.

Checkpoints bound replay time: :meth:`checkpoint` snapshots the
catalog atomically at the current WAL high-water mark, then truncates
the log behind it. Recovery loads the newest checkpoint and replays
only the tail.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any

from ..errors import WalCorruptionError
from ..faults.crash import CrashInjector
from .checkpoint import CheckpointInfo, CheckpointManager
from .wal import WriteAheadLog

__all__ = ["DurabilityManager"]

WAL_NAME = "wal.log"
CHECKPOINT_DIR = "checkpoints"
DEFAULT_CHECKPOINT_BYTES = 4 * 2**20


class DurabilityManager:
    """One durability directory: ``wal.log`` + ``checkpoints/``."""

    def __init__(self, path: str | Path, *,
                 checkpoint_bytes: int = DEFAULT_CHECKPOINT_BYTES,
                 keep_checkpoints: int = 1,
                 crash_injector: CrashInjector | None = None,
                 sync: bool = False):
        self.root = Path(path)
        self.root.mkdir(parents=True, exist_ok=True)
        #: WAL size that arms the service's background checkpoint
        self.checkpoint_bytes = checkpoint_bytes
        self.keep_checkpoints = max(1, keep_checkpoints)
        self.crash_injector = crash_injector
        self.checkpoints = CheckpointManager(
            self.root / CHECKPOINT_DIR, crash_injector=crash_injector)
        self.wal = WriteAheadLog(self.root / WAL_NAME,
                                 crash_injector=crash_injector,
                                 sync=sync)
        newest = self.checkpoints.newest()
        if newest is not None:
            # A fully truncated WAL must continue the global sequence.
            self.wal.ensure_seq_floor(newest.seqno)
        self._lock = threading.Lock()
        self.last_checkpoint_seqno = (
            newest.seqno if newest is not None else 0)
        #: populated by :meth:`recover_into`
        self.recovered: dict[str, int] | None = None

    # ------------------------------------------------------------------
    def has_state(self) -> bool:
        """True when the directory holds any durable state to recover."""
        return (self.checkpoints.newest() is not None
                or self.wal.last_seqno > 0)

    def log(self, record: dict[str, Any]) -> tuple[int, int]:
        """Durably append one mutation record; ``(seqno, bytes)``.

        Fires the ``post-append-pre-apply`` crash point after the
        record is on disk but before the caller applies the mutation.
        """
        seqno, nbytes = self.wal.append(record)
        if self.crash_injector is not None:
            self.crash_injector.crashpoint("post-append-pre-apply")
        return seqno, nbytes

    # ------------------------------------------------------------------
    def should_checkpoint(self) -> bool:
        """True when the WAL has outgrown ``checkpoint_bytes``."""
        return self.wal.size() >= self.checkpoint_bytes

    def checkpoint(self, catalog) -> CheckpointInfo:
        """Snapshot ``catalog`` and truncate the WAL behind it.

        The caller must guarantee no mutation is in flight (the service
        layer holds its exclusive table lock).
        """
        with self._lock:
            seqno = self.wal.last_seqno
            info = self.checkpoints.write(catalog, seqno)
            self.wal.truncate_through(seqno)
            self.checkpoints.prune(keep=self.keep_checkpoints)
            self.last_checkpoint_seqno = seqno
            return info

    def maybe_checkpoint(self, catalog) -> CheckpointInfo | None:
        """Checkpoint only when the WAL crossed the size threshold."""
        if not self.should_checkpoint():
            return None
        return self.checkpoint(catalog)

    # ------------------------------------------------------------------
    def recover_into(self, catalog) -> dict[str, int]:
        """Load the newest checkpoint and replay the WAL tail.

        ``catalog`` must be empty and must have its replay guard set
        (``Catalog.enable_durability`` arranges both). Tolerates a
        torn final WAL record; raises
        :class:`~repro.errors.WalCorruptionError` for interior damage
        or a sequence gap between checkpoint and tail.
        """
        from ..persistence import load_manifest, load_tables
        from ..storage.micropartition import partition_id_generator

        checkpoint_seq = 0
        max_partition_id = 0
        newest = self.checkpoints.newest()
        if newest is not None:
            manifest = load_manifest(newest.path)
            checkpoint_seq = int(manifest.get("wal_seqno",
                                              newest.seqno))
            catalog.rows_per_partition = manifest.get(
                "rows_per_partition", catalog.rows_per_partition)
            sketch_manifest = manifest.get("sketches")
            if sketch_manifest:
                # Re-enable before loading tables / replaying the WAL
                # tail so both paths rebuild sketches as partitions
                # register; malformed config fails open.
                try:
                    from ..pruning.sketches import SketchConfig

                    catalog.enable_sketches(
                        SketchConfig.from_manifest(sketch_manifest))
                except Exception:  # noqa: BLE001 - best-effort
                    pass
            for table in load_tables(newest.path, manifest):
                catalog.create_table(table)
                if table.partition_ids:
                    max_partition_id = max(max_partition_id,
                                           *table.partition_ids)
        replayed = 0
        last_seq = checkpoint_seq
        for seqno, record in self.wal.records():
            if seqno <= checkpoint_seq:
                continue  # already captured by the checkpoint
            if seqno != last_seq + 1:
                raise WalCorruptionError(
                    f"WAL tail starts at seqno {seqno} but the "
                    f"checkpoint covers through {last_seq}: "
                    f"committed records are missing")
            catalog.apply_wal_record(record)
            replayed += 1
            last_seq = seqno
        for table in catalog.tables.values():
            if table.partition_ids:
                max_partition_id = max(max_partition_id,
                                       *table.partition_ids)
        partition_id_generator.ensure_floor(max_partition_id)
        self.wal.ensure_seq_floor(last_seq)
        self.recovered = {"checkpoint_seqno": checkpoint_seq,
                          "replayed": replayed}
        return self.recovered

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Operational snapshot for ``describe()`` and reports."""
        out: dict[str, Any] = {
            "path": str(self.root),
            "wal_appends": self.wal.appends,
            "wal_bytes": self.wal.appended_bytes,
            "wal_size_bytes": self.wal.size(),
            "last_seqno": self.wal.last_seqno,
            "checkpoints_written": self.checkpoints.written,
            "last_checkpoint_seqno": self.last_checkpoint_seqno,
            "checkpoint_bytes": self.checkpoint_bytes,
        }
        if self.recovered is not None:
            out["recovered"] = dict(self.recovered)
        return out

    def close(self) -> None:
        self.wal.close()

    def __repr__(self) -> str:
        return (f"DurabilityManager({self.root}, "
                f"last_seqno={self.wal.last_seqno}, "
                f"last_checkpoint={self.last_checkpoint_seqno})")
