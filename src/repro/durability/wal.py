"""The write-ahead log: CRC-framed, monotonically sequenced records.

One frame per committed mutation::

    [payload_len u32 LE][seqno u64 LE][crc32 u32 LE][payload JSON utf-8]

``crc32`` covers the seqno and the payload, so neither can be altered
without detection. Sequence numbers are strictly monotonic (+1), which
turns replay gaps into typed corruption instead of silent data loss.

Failure semantics mirror production WALs (etcd, Postgres):

* a **torn or truncated final frame** — short header, short payload,
  or a final frame whose CRC fails — is the expected signature of a
  crash mid-append: the mutation never committed, the tail is dropped
  (and physically truncated on reopen);
* a **corrupt interior frame** (bad CRC or a sequence discontinuity
  with valid frames after it) means committed history is damaged, and
  reading fails closed with
  :class:`~repro.errors.WalCorruptionError`.

Appends flush eagerly — the "simulated fsync" commit barrier — so the
bytes a crash point observes on disk are exactly what had been
committed when it fired. A real ``os.fsync`` can be enabled with
``sync=True`` for tests that want the OS-level barrier too.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from pathlib import Path
from typing import Any, Iterator

from ..errors import WalCorruptionError
from ..faults.crash import CrashInjector

__all__ = ["WriteAheadLog"]

_HEADER = struct.Struct("<IQI")  # payload_len, seqno, crc32
_SEQ = struct.Struct("<Q")
#: sanity cap on a single frame; anything larger is corruption
_MAX_RECORD_BYTES = 1 << 31


def _frame_crc(seqno: int, payload: bytes) -> int:
    return zlib.crc32(_SEQ.pack(seqno) + payload)


def iter_frames(data: bytes) -> Iterator[tuple[int, bytes, int]]:
    """Yield ``(seqno, payload, end_offset)`` for every intact frame.

    Stops silently at a torn tail (incomplete or CRC-corrupt *final*
    frame); raises :class:`WalCorruptionError` for interior damage.
    """
    offset = 0
    size = len(data)
    prev_seq: int | None = None
    while offset < size:
        if size - offset < _HEADER.size:
            return  # torn tail: incomplete header
        length, seqno, crc = _HEADER.unpack_from(data, offset)
        end = offset + _HEADER.size + length
        if length > _MAX_RECORD_BYTES or end > size:
            return  # torn tail: incomplete payload
        payload = data[offset + _HEADER.size:end]
        if _frame_crc(seqno, payload) != crc:
            if end == size:
                return  # torn tail: final frame half-written
            raise WalCorruptionError(
                f"WAL record seqno={seqno} at byte {offset} failed "
                f"its CRC check with committed records after it")
        if prev_seq is not None and seqno != prev_seq + 1:
            raise WalCorruptionError(
                f"WAL sequence discontinuity at byte {offset}: "
                f"seqno {seqno} follows {prev_seq}")
        yield seqno, payload, end
        prev_seq = seqno
        offset = end


class WriteAheadLog:
    """Append-only framed log with crash-point hooks.

    Thread-safe: appends serialize on an internal lock (the service
    layer additionally serializes DML under its write lock, so log
    order equals apply order). Opening an existing log scans it,
    truncates any torn tail left by a crash, and resumes the sequence
    after the last intact record.
    """

    def __init__(self, path: str | Path, *,
                 crash_injector: CrashInjector | None = None,
                 sync: bool = False):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.crash_injector = crash_injector
        self.sync = sync
        self._lock = threading.Lock()
        #: lifetime append counters for this process (observability)
        self.appends = 0
        self.appended_bytes = 0
        #: True when opening found and dropped a torn tail
        self.torn_tail_repaired = False
        last_seq = 0
        valid_end = 0
        data = self.path.read_bytes() if self.path.exists() else b""
        for seqno, _payload, end in iter_frames(data):
            last_seq = seqno
            valid_end = end
        if valid_end < len(data):
            with open(self.path, "r+b") as handle:
                handle.truncate(valid_end)
            self.torn_tail_repaired = True
        self._last_seq = last_seq
        self._handle = open(self.path, "ab")

    # ------------------------------------------------------------------
    @property
    def last_seqno(self) -> int:
        """Sequence number of the last committed record (0 when none)."""
        return self._last_seq

    def ensure_seq_floor(self, seqno: int) -> None:
        """Never hand out sequence numbers <= ``seqno``.

        Called with the newest checkpoint's sequence number on open: a
        fully truncated log must still continue the global sequence,
        or fresh records would be mistaken for already-checkpointed
        ones on the next recovery.
        """
        with self._lock:
            self._last_seq = max(self._last_seq, seqno)

    def size(self) -> int:
        """Current on-disk size in bytes (bytes since last truncation)."""
        with self._lock:
            self._handle.flush()
            return self.path.stat().st_size

    # ------------------------------------------------------------------
    def append(self, record: dict[str, Any]) -> tuple[int, int]:
        """Durably append one record; returns ``(seqno, frame_bytes)``.

        Crash points: ``pre-append`` fires before any byte is written;
        ``mid-append`` writes (and flushes) the first half of the frame
        before dying — the torn-write case recovery must tolerate.
        """
        payload = json.dumps(record, separators=(",", ":")).encode()
        injector = self.crash_injector
        with self._lock:
            seqno = self._last_seq + 1
            frame = _HEADER.pack(len(payload), seqno,
                                 _frame_crc(seqno, payload)) + payload
            if injector is not None:
                injector.crashpoint("pre-append")
                injector.crashpoint(
                    "mid-append",
                    on_fire=lambda: self._write(
                        frame[:max(1, len(frame) // 2)]))
            self._write(frame)
            self._last_seq = seqno
            self.appends += 1
            self.appended_bytes += len(frame)
        return seqno, len(frame)

    def _write(self, data: bytes) -> None:
        self._handle.write(data)
        self._handle.flush()
        if self.sync:
            os.fsync(self._handle.fileno())

    # ------------------------------------------------------------------
    def records(self) -> list[tuple[int, dict[str, Any]]]:
        """Every intact ``(seqno, record)``, oldest first.

        Raises :class:`WalCorruptionError` for interior corruption or
        an undecodable committed payload; a torn tail is dropped.
        """
        with self._lock:
            self._handle.flush()
            data = self.path.read_bytes()
        out = []
        for seqno, payload, _end in iter_frames(data):
            try:
                out.append((seqno, json.loads(payload.decode())))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise WalCorruptionError(
                    f"WAL record seqno={seqno} passed its CRC but "
                    f"does not decode: {exc}") from exc
        return out

    def truncate_through(self, seqno: int) -> None:
        """Drop every record with sequence number <= ``seqno``.

        Rewrites the retained tail to a temp file and atomically
        replaces the log, so a crash mid-truncation leaves either the
        old or the new log — never a mangled one.
        """
        with self._lock:
            self._handle.flush()
            data = self.path.read_bytes()
            kept = bytearray()
            start = 0
            for record_seq, _payload, end in iter_frames(data):
                if record_seq <= seqno:
                    start = end
                else:
                    break
            kept.extend(data[start:])
            tmp = self.path.with_name(self.path.name + ".tmp")
            with open(tmp, "wb") as handle:
                handle.write(bytes(kept))
                handle.flush()
                os.fsync(handle.fileno())
            self._handle.close()
            os.replace(tmp, self.path)
            self._handle = open(self.path, "ab")

    def close(self) -> None:
        with self._lock:
            self._handle.close()

    def __repr__(self) -> str:
        return (f"WriteAheadLog({self.path}, last_seqno="
                f"{self._last_seq}, appends={self.appends})")
