"""Durability: write-ahead logging, checkpoints, crash recovery.

The paper's architecture (§2) assumes a durable storage layer beneath
the compute tier; this package gives the reproduction's catalog the
same property. Every committed mutation (insert / delete_where /
update_where / recluster / create / drop) is appended to a CRC-framed
:class:`WriteAheadLog` *before* it is applied in memory, an atomic
:class:`CheckpointManager` snapshot bounds replay, and
:class:`DurabilityManager.recover_into` deterministically rebuilds a
bit-identical catalog after a crash at any point on the commit path.

Quickstart::

    from repro import Catalog

    catalog = Catalog()
    catalog.enable_durability("/data/warehouse")   # WAL + checkpoints
    catalog.create_table_from_rows("t", schema, rows)
    catalog.sql("DELETE FROM t WHERE v < 0")       # logged, then applied

    # ... process dies; later:
    recovered = Catalog.recover("/data/warehouse")

Crash-point testing uses
:class:`repro.faults.CrashInjector` — see ``tests/test_durability.py``
for the crash-at-every-point sweep and ``docs/durability.md`` for the
format and crash-matrix reference.
"""

from .checkpoint import CheckpointInfo, CheckpointManager
from .manager import DurabilityManager
from .wal import WriteAheadLog

__all__ = [
    "CheckpointInfo",
    "CheckpointManager",
    "DurabilityManager",
    "WriteAheadLog",
]
