"""Saving and loading catalogs to disk.

Layout: a directory containing ``manifest.json`` (schemas, partition
ids, catalog settings) plus one ``<table>.npz`` per table holding every
partition's column values and null masks. No pickling: VARCHAR columns
are stored as fixed-width unicode arrays and converted back to object
arrays on load.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .catalog import Catalog
from .errors import StorageError
from .storage.column import Column
from .storage.micropartition import (
    MicroPartition,
    partition_id_generator,
)
from .storage.table import Table
from .types import DataType, Field, Schema

MANIFEST_NAME = "manifest.json"
FORMAT_VERSION = 1


def save_catalog(catalog: Catalog, path: str | Path) -> None:
    """Write every table of the catalog under ``path``.

    The directory is created if needed; existing contents with the
    same file names are overwritten.
    """
    root = Path(path)
    root.mkdir(parents=True, exist_ok=True)
    manifest: dict = {
        "version": FORMAT_VERSION,
        "rows_per_partition": catalog.rows_per_partition,
        "tables": {},
    }
    for name, table in catalog.tables.items():
        manifest["tables"][name] = {
            "schema": [[f.name, f.dtype.value] for f in table.schema],
            "partitions": table.partition_ids,
        }
        arrays: dict[str, np.ndarray] = {}
        for partition in table.partitions:
            for column_name, column in partition.columns().items():
                key = f"{partition.partition_id}__{column_name}"
                arrays[f"{key}__v"] = _encode_values(column)
                arrays[f"{key}__n"] = column.nulls
        np.savez_compressed(root / f"{name}.npz", **arrays)
    with open(root / MANIFEST_NAME, "w") as handle:
        json.dump(manifest, handle, indent=2)


def load_catalog(path: str | Path, **catalog_kwargs) -> Catalog:
    """Reconstruct a catalog saved with :func:`save_catalog`.

    Partition ids are preserved and the global id generator is bumped
    past them, so tables created afterwards cannot collide.

    Raises:
        StorageError: if the directory or manifest is missing or the
            format version is unsupported.
    """
    root = Path(path)
    manifest_path = root / MANIFEST_NAME
    if not manifest_path.exists():
        raise StorageError(f"no catalog manifest at {manifest_path}")
    with open(manifest_path) as handle:
        manifest = json.load(handle)
    if manifest.get("version") != FORMAT_VERSION:
        raise StorageError(
            f"unsupported catalog format version "
            f"{manifest.get('version')!r}")
    catalog = Catalog(
        rows_per_partition=manifest.get("rows_per_partition", 1000),
        **catalog_kwargs)
    max_id = 0
    for name, entry in manifest["tables"].items():
        schema = Schema(Field(col, DataType(dtype))
                        for col, dtype in entry["schema"])
        with np.load(root / f"{name}.npz", allow_pickle=False) as data:
            partitions = []
            for partition_id in entry["partitions"]:
                columns = {}
                for field in schema:
                    key = f"{partition_id}__{field.name}"
                    values = _decode_values(data[f"{key}__v"],
                                            field.dtype)
                    nulls = np.asarray(data[f"{key}__n"],
                                       dtype=np.bool_)
                    columns[field.name] = Column(field.dtype, values,
                                                 nulls)
                partitions.append(MicroPartition(
                    schema, columns, partition_id=partition_id))
                max_id = max(max_id, partition_id)
        catalog.create_table(Table(name, schema, partitions))
    partition_id_generator.ensure_floor(max_id)
    return catalog


def _encode_values(column: Column) -> np.ndarray:
    if column.dtype == DataType.VARCHAR:
        # Fixed-width unicode instead of object dtype: avoids pickle.
        encoded = np.asarray(column.values, dtype=np.str_)
        if encoded.dtype.itemsize == 0:  # all-empty or zero rows
            encoded = encoded.astype("<U1")
        return encoded
    return column.values


def _decode_values(values: np.ndarray, dtype: DataType) -> np.ndarray:
    if dtype == DataType.VARCHAR:
        return np.asarray([str(v) for v in values], dtype=object)
    return np.asarray(values, dtype=dtype.numpy_dtype())
