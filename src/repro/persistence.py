"""Saving and loading catalogs to disk.

Layout: a directory containing ``manifest.json`` (schemas, partition
ids, catalog settings) plus one ``<table>.npz`` per table holding every
partition's column values and null masks. No pickling: VARCHAR columns
are stored as fixed-width unicode arrays and converted back to object
arrays on load.

Saves are **atomic**: the snapshot is written to a hidden temp sibling
directory and swapped into place with directory renames, so a crash at
any point during :func:`save_catalog` leaves the previous good copy
loadable. Every load failure mode — missing or corrupt manifest,
truncated/corrupt ``.npz``, missing table file, unknown keys — raises
a typed :class:`~repro.errors.StorageError` rather than leaking bare
``KeyError``/``OSError``.
"""

from __future__ import annotations

import json
import os
import shutil
import zipfile
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from .catalog import Catalog
from .errors import StorageError
from .storage.column import Column
from .storage.micropartition import (
    MicroPartition,
    partition_id_generator,
)
from .storage.table import Table
from .types import DataType, Field, Schema

MANIFEST_NAME = "manifest.json"
FORMAT_VERSION = 1


def save_catalog(catalog: Catalog, path: str | Path,
                 extra_manifest: Mapping[str, Any] | None = None
                 ) -> None:
    """Atomically write every table of the catalog under ``path``.

    The snapshot is staged in a temp sibling directory and renamed
    into place, so an interrupted save can never clobber an existing
    snapshot at ``path``. ``extra_manifest`` entries are merged into
    the manifest (the durability layer stores its WAL sequence number
    this way).
    """
    root = Path(path)
    root.parent.mkdir(parents=True, exist_ok=True)
    staging = root.parent / f".{root.name}.tmp-save"
    if staging.exists():
        shutil.rmtree(staging)
    staging.mkdir()
    manifest: dict = {
        "version": FORMAT_VERSION,
        "rows_per_partition": catalog.rows_per_partition,
        "tables": {},
    }
    if extra_manifest:
        manifest.update(extra_manifest)
    if getattr(catalog, "sketch_config", None) is not None:
        # Sketches rebuild from the data on load, so only their
        # configuration rides the snapshot (and, via the durability
        # layer's checkpoints, survives crash recovery).
        manifest["sketches"] = catalog.sketch_config.to_manifest()
    for name, table in catalog.tables.items():
        manifest["tables"][name] = {
            "schema": [[f.name, f.dtype.value] for f in table.schema],
            "partitions": table.partition_ids,
        }
        arrays: dict[str, np.ndarray] = {}
        for partition in table.partitions:
            for column_name, column in partition.columns().items():
                key = f"{partition.partition_id}__{column_name}"
                arrays[f"{key}__v"] = _encode_values(column)
                arrays[f"{key}__n"] = column.nulls
        np.savez_compressed(staging / f"{name}.npz", **arrays)
    with open(staging / MANIFEST_NAME, "w") as handle:
        json.dump(manifest, handle, indent=2)
    if not root.exists():
        os.rename(staging, root)
        return
    # Swap: retire the old snapshot, promote the staged one. The
    # window between the two renames has no directory at ``path``;
    # the fully-atomic variant (used by checkpoints) publishes each
    # snapshot under a fresh name instead.
    backup = root.parent / f".{root.name}.old-save"
    if backup.exists():
        shutil.rmtree(backup)
    os.rename(root, backup)
    os.rename(staging, root)
    shutil.rmtree(backup)


def load_manifest(path: str | Path) -> dict:
    """Read and validate a snapshot's ``manifest.json``.

    Raises:
        StorageError: missing directory/manifest, undecodable JSON,
            unsupported format version, or a malformed table map.
    """
    root = Path(path)
    manifest_path = root / MANIFEST_NAME
    if not manifest_path.exists():
        raise StorageError(f"no catalog manifest at {manifest_path}")
    try:
        with open(manifest_path) as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise StorageError(
            f"unreadable catalog manifest at {manifest_path}: "
            f"{exc}") from exc
    if not isinstance(manifest, dict) \
            or manifest.get("version") != FORMAT_VERSION:
        version = manifest.get("version") \
            if isinstance(manifest, dict) else manifest
        raise StorageError(
            f"unsupported catalog format version {version!r}")
    if not isinstance(manifest.get("tables"), dict):
        raise StorageError(
            f"catalog manifest at {manifest_path} has no table map")
    return manifest


def load_tables(path: str | Path, manifest: Mapping[str, Any]
                ) -> list[Table]:
    """Reconstruct every table of a snapshot, with typed failures.

    Raises:
        StorageError: malformed manifest entries, a missing or
            truncated ``.npz``, or partition keys absent from it.
    """
    root = Path(path)
    tables = []
    for name, entry in manifest["tables"].items():
        tables.append(_load_table(root, name, entry))
    return tables


def _load_table(root: Path, name: str, entry: Mapping[str, Any]
                ) -> Table:
    try:
        schema = Schema(Field(col, DataType(dtype))
                        for col, dtype in entry["schema"])
    except (KeyError, TypeError, ValueError) as exc:
        raise StorageError(
            f"malformed manifest entry for table {name!r}: "
            f"{exc!r}") from exc
    npz_path = root / f"{name}.npz"
    try:
        with np.load(npz_path, allow_pickle=False) as data:
            partitions = []
            for partition_id in entry["partitions"]:
                columns = {}
                for field in schema:
                    key = f"{partition_id}__{field.name}"
                    values = _decode_values(data[f"{key}__v"],
                                            field.dtype)
                    nulls = np.asarray(data[f"{key}__n"],
                                       dtype=np.bool_)
                    columns[field.name] = Column(field.dtype, values,
                                                 nulls)
                partitions.append(MicroPartition(
                    schema, columns, partition_id=partition_id))
    except StorageError:
        raise
    except (OSError, KeyError, ValueError, TypeError,
            zipfile.BadZipFile) as exc:
        raise StorageError(
            f"failed to load table {name!r} from {npz_path}: "
            f"{exc!r}") from exc
    return Table(name, schema, partitions)


def load_catalog(path: str | Path, **catalog_kwargs) -> Catalog:
    """Reconstruct a catalog saved with :func:`save_catalog`.

    Partition ids are preserved and the global id generator is bumped
    past them, so tables created afterwards cannot collide.

    Raises:
        StorageError: for every failure mode — missing or corrupt
            manifest, unsupported version, missing/truncated table
            files, or manifest keys absent from them.
    """
    root = Path(path)
    manifest = load_manifest(root)
    catalog = Catalog(
        rows_per_partition=manifest.get("rows_per_partition", 1000),
        **catalog_kwargs)
    sketch_manifest = manifest.get("sketches")
    if sketch_manifest:
        # Enable before table creation so registration builds the
        # sketches as each partition lands; a malformed entry fails
        # open (the catalog simply loads without sketches).
        try:
            from .pruning.sketches import SketchConfig

            catalog.enable_sketches(
                SketchConfig.from_manifest(sketch_manifest))
        except Exception:  # noqa: BLE001 - sketches are best-effort
            pass
    max_id = 0
    for table in load_tables(root, manifest):
        for partition_id in table.partition_ids:
            max_id = max(max_id, partition_id)
        catalog.create_table(table)
    partition_id_generator.ensure_floor(max_id)
    return catalog


def _encode_values(column: Column) -> np.ndarray:
    if column.dtype == DataType.VARCHAR:
        # Fixed-width unicode instead of object dtype: avoids pickle.
        encoded = np.asarray(column.values, dtype=np.str_)
        if encoded.dtype.itemsize == 0:  # all-empty or zero rows
            encoded = encoded.astype("<U1")
        return encoded
    return column.values


def _decode_values(values: np.ndarray, dtype: DataType) -> np.ndarray:
    if dtype == DataType.VARCHAR:
        return np.asarray([str(v) for v in values], dtype=object)
    return np.asarray(values, dtype=dtype.numpy_dtype())
