"""Observability: query tracing + fleet telemetry (§7).

Three layers:

* :mod:`repro.obs.trace` — hierarchical spans per query (parse → plan
  → prune-per-technique → scan → retry), rendered by
  ``EXPLAIN ANALYZE``;
* :mod:`repro.obs.telemetry` — one :class:`TelemetryRecord` per query,
  collected in a bounded thread-safe :class:`TelemetrySink`;
* :mod:`repro.obs.fleet` — aggregation of a record window into the
  paper's fleet figures (per-technique pruning-ratio CDFs, latency
  percentiles, slow-query log).
"""

from .fleet import (
    fleet_json,
    fleet_summary,
    latency_percentiles,
    render_fleet_report,
    technique_ratio_cdfs,
)
from .telemetry import TelemetryRecord, TelemetrySink
from .trace import Span, Tracer, render_span_tree

__all__ = [
    "Span",
    "Tracer",
    "render_span_tree",
    "TelemetryRecord",
    "TelemetrySink",
    "fleet_json",
    "fleet_summary",
    "latency_percentiles",
    "render_fleet_report",
    "technique_ratio_cdfs",
]
