"""Per-query telemetry records and the fleet-wide sink.

The paper's evaluation (§7) is a *telemetry study*: every query in the
fleet emits one structured record — partitions scanned vs. pruned per
technique, bytes, rows, cache hits, timings — and the figures are
aggregations over those records. :class:`TelemetryRecord` is our
per-query record; :class:`TelemetrySink` is the bounded, thread-safe
buffer the :class:`~repro.catalog.Catalog` and
:class:`~repro.service.server.QueryService` write into.

The sink is a ring buffer: it retains the most recent ``capacity``
records and counts what it dropped, so a long-running service has
bounded memory while :mod:`repro.obs.fleet` can still aggregate a
meaningful window.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

from ..pruning.base import PruneCategory

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..catalog import QueryResult

__all__ = ["TelemetryRecord", "TelemetrySink"]

#: additive summary counters maintained incrementally by the sink.
_SUM_KEYS = (
    "errors",
    "result_cache_hits",
    "predicate_cache_hits",
    "plan_cache_hits",
    "data_cache_hits",
    "data_cache_misses",
    "data_cache_bytes_saved",
    "wal_appends",
    "wal_bytes",
    "degraded_queries",
    "retried_queries",
    "partitions_total",
    "partitions_pruned",
    "bytes_scanned",
    "rows_returned",
    "recluster_slices",
    "recluster_partitions_rewritten",
    "recluster_bytes_rewritten",
)


@dataclass
class TelemetryRecord:
    """One query's worth of fleet telemetry (§7 schema).

    Partition counters follow the paper's vocabulary: ``partitions_total``
    is the pre-pruning population across all scans, ``partitions_pruned``
    the partitions any technique removed, ``partitions_loaded`` what the
    engine actually read. ``pruned_by_technique`` splits the pruned count
    by :class:`~repro.pruning.base.PruneCategory` name.
    """

    query_id: str = ""
    sql: str = ""
    #: "select", "dml", or "recluster" (background maintenance slice)
    kind: str = "select"
    tables: tuple[str, ...] = ()
    #: "ok", "error", "cancelled", or "cache_hit"
    status: str = "ok"
    error: str = ""
    partitions_total: int = 0
    partitions_loaded: int = 0
    partitions_pruned: int = 0
    pruned_by_technique: dict[str, int] = field(default_factory=dict)
    #: techniques whose preconditions held for this query (a query is
    #: only counted in a technique's pruning-ratio CDF when eligible)
    eligible_techniques: tuple[str, ...] = ()
    #: per-table columns the query's prunable filter predicates
    #: referenced (the recluster advisor's workload signal); only
    #: filter-eligible scans contribute.
    filter_columns: dict[str, tuple[str, ...]] = field(
        default_factory=dict)
    #: per-table ``(partitions_total, filter_pruned)`` over the query's
    #: filter-eligible scans — the eligibility-conditioned numerator /
    #: denominator of the paper's filter pruning-ratio CDF, split by
    #: table so the advisor can localize poor pruning.
    filter_pruning_by_table: dict[str, tuple[int, int]] = field(
        default_factory=dict)
    #: partitions a background recluster slice rewrote (kind ==
    #: "recluster"; 0 for queries).
    partitions_rewritten: int = 0
    #: input bytes that slice rewrote (kind == "recluster").
    bytes_rewritten: int = 0
    rows_scanned: int = 0
    rows_returned: int = 0
    bytes_scanned: int = 0
    result_cache_hit: bool = False
    predicate_cache_hit: bool = False
    #: the compiled-plan cache served this query's plan shape (the
    #: literals were rebound; no parse/bind/plan work was repeated)
    plan_cache_hit: bool = False
    #: warehouse-local data cache traffic (paper §2): partitions this
    #: query served locally vs fetched from object storage, and the
    #: bytes the hits kept off the wire.
    data_cache_hits: int = 0
    data_cache_misses: int = 0
    data_cache_bytes_saved: int = 0
    #: write-ahead-log records this statement appended / bytes those
    #: appends framed (DML with durability enabled; otherwise 0).
    wal_appends: int = 0
    wal_bytes: int = 0
    #: successful tightenings of shared top-k boundaries during scans
    #: (runtime-pruning feedback activity; 0 for non-top-k queries).
    topk_boundary_updates: int = 0
    #: speculative loads (morsel readahead / prefetch) a tightened
    #: boundary later discarded — wasted wire bytes, not query cost.
    prefetched_then_skipped: int = 0
    metadata_only: bool = False
    degraded: bool = False
    degraded_partitions: int = 0
    retries: int = 0
    attempts: int = 1
    compile_ms: float = 0.0
    exec_ms: float = 0.0
    #: simulated cost-model total (compile + exec)
    simulated_ms: float = 0.0
    #: real wall-clock time observed by the recording layer
    wall_ms: float = 0.0
    queue_wait_ms: float = 0.0
    cluster: str = ""
    scan_parallelism: int = 1

    @property
    def data_cache_hit_ratio(self) -> float:
        """Hits over data-cache lookups (0 when the cache saw none)."""
        lookups = self.data_cache_hits + self.data_cache_misses
        return self.data_cache_hits / lookups if lookups else 0.0

    @property
    def pruning_ratio(self) -> float:
        """Fraction of the partition population pruned (0 when empty)."""
        if self.partitions_total == 0:
            return 0.0
        return self.partitions_pruned / self.partitions_total

    def technique_ratio(self, technique: str) -> float:
        """Fraction of partitions ``technique`` pruned (0 when empty)."""
        if self.partitions_total == 0:
            return 0.0
        return (self.pruned_by_technique.get(technique, 0)
                / self.partitions_total)

    @classmethod
    def from_result(cls, result: "QueryResult", wall_ms: float = 0.0,
                    kind: str = "select") -> "TelemetryRecord":
        """Build a record from an executed query's result + profile."""
        profile = result.profile
        by_technique: dict[str, int] = {}
        eligible: "OrderedDict[str, None]" = OrderedDict()
        filter_columns: dict[str, set[str]] = {}
        filter_pruning: dict[str, tuple[int, int]] = {}
        for scan in profile.scans:
            if scan.filter_eligible:
                eligible[PruneCategory.FILTER] = None
                filter_columns.setdefault(scan.table, set()).update(
                    scan.filter_columns)
                total, pruned = filter_pruning.get(scan.table, (0, 0))
                filter_pruning[scan.table] = (
                    total + scan.total_partitions,
                    pruned + (scan.filter_result.pruned
                              if scan.filter_result is not None else 0))
            if scan.sketch_eligible:
                eligible[PruneCategory.SKETCH] = None
            for pruning in scan.pruning_results():
                by_technique[pruning.technique] = (
                    by_technique.get(pruning.technique, 0)
                    + pruning.pruned)
        if profile.limit_eligible:
            eligible[PruneCategory.LIMIT] = None
        if profile.topk_eligible:
            eligible[PruneCategory.TOPK] = None
        if profile.join_eligible:
            eligible[PruneCategory.JOIN] = None
        return cls(
            query_id=profile.query_id,
            sql=result.sql,
            kind=kind,
            tables=tuple(dict.fromkeys(s.table
                                       for s in profile.scans)),
            partitions_total=profile.total_partitions,
            partitions_loaded=profile.partitions_loaded,
            partitions_pruned=profile.partitions_pruned,
            pruned_by_technique=by_technique,
            eligible_techniques=tuple(eligible),
            filter_columns={t: tuple(sorted(cols))
                            for t, cols in filter_columns.items()},
            filter_pruning_by_table=filter_pruning,
            rows_scanned=sum(s.rows_scanned for s in profile.scans),
            rows_returned=result.num_rows,
            bytes_scanned=sum(s.bytes_scanned for s in profile.scans),
            predicate_cache_hit=any(s.cache_hit
                                    for s in profile.scans),
            plan_cache_hit=profile.plan_cache_hit,
            data_cache_hits=profile.data_cache_hits,
            data_cache_misses=profile.data_cache_misses,
            data_cache_bytes_saved=profile.data_cache_bytes_saved,
            wal_appends=profile.wal_appends,
            wal_bytes=profile.wal_bytes,
            topk_boundary_updates=profile.topk_boundary_updates,
            prefetched_then_skipped=profile.prefetched_then_skipped,
            metadata_only=bool(profile.scans) and all(
                s.metadata_only for s in profile.scans),
            degraded=profile.degraded,
            degraded_partitions=profile.degraded_partitions,
            retries=profile.total_retries,
            compile_ms=profile.compile_ms,
            exec_ms=profile.exec_ms,
            simulated_ms=profile.total_ms,
            wall_ms=wall_ms,
            scan_parallelism=profile.scan_parallelism,
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly flat representation."""
        return {
            "query_id": self.query_id,
            "sql": self.sql,
            "kind": self.kind,
            "tables": list(self.tables),
            "status": self.status,
            "error": self.error,
            "partitions_total": self.partitions_total,
            "partitions_loaded": self.partitions_loaded,
            "partitions_pruned": self.partitions_pruned,
            "pruned_by_technique": dict(self.pruned_by_technique),
            "eligible_techniques": list(self.eligible_techniques),
            "filter_columns": {t: list(cols) for t, cols
                               in self.filter_columns.items()},
            "filter_pruning_by_table": {
                t: list(v) for t, v
                in self.filter_pruning_by_table.items()},
            "partitions_rewritten": self.partitions_rewritten,
            "bytes_rewritten": self.bytes_rewritten,
            "pruning_ratio": round(self.pruning_ratio, 6),
            "rows_scanned": self.rows_scanned,
            "rows_returned": self.rows_returned,
            "bytes_scanned": self.bytes_scanned,
            "result_cache_hit": self.result_cache_hit,
            "predicate_cache_hit": self.predicate_cache_hit,
            "plan_cache_hit": self.plan_cache_hit,
            "data_cache_hits": self.data_cache_hits,
            "data_cache_misses": self.data_cache_misses,
            "data_cache_bytes_saved": self.data_cache_bytes_saved,
            "data_cache_hit_ratio": round(
                self.data_cache_hit_ratio, 6),
            "wal_appends": self.wal_appends,
            "wal_bytes": self.wal_bytes,
            "topk_boundary_updates": self.topk_boundary_updates,
            "prefetched_then_skipped": self.prefetched_then_skipped,
            "metadata_only": self.metadata_only,
            "degraded": self.degraded,
            "degraded_partitions": self.degraded_partitions,
            "retries": self.retries,
            "attempts": self.attempts,
            "compile_ms": round(self.compile_ms, 4),
            "exec_ms": round(self.exec_ms, 4),
            "simulated_ms": round(self.simulated_ms, 4),
            "wall_ms": round(self.wall_ms, 4),
            "queue_wait_ms": round(self.queue_wait_ms, 4),
            "cluster": self.cluster,
            "scan_parallelism": self.scan_parallelism,
        }


class TelemetrySink:
    """Thread-safe bounded ring buffer of :class:`TelemetryRecord`.

    Mirrors the fleet telemetry pipeline the paper's §7 study reads
    from: every query appends one record; when the buffer is full the
    oldest record is dropped (and counted). ``annotate`` lets an outer
    layer (the service) enrich a record the catalog already wrote —
    queue wait, wall clock, cluster — without double-recording.
    """

    def __init__(self, capacity: int = 4096,
                 slow_query_ms: float = 100.0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        #: simulated-ms threshold above which a query is "slow"
        self.slow_query_ms = slow_query_ms
        self._lock = threading.Lock()
        self._records: deque[TelemetryRecord] = deque(maxlen=capacity)
        self._by_id: dict[str, TelemetryRecord] = {}
        self.total_recorded = 0
        self.dropped = 0
        #: running sums over the *retained* window, maintained under
        #: the record lock so ``summary()`` is O(1) instead of ~15
        #: O(n) passes over the ring on every ``describe()`` call.
        self._sums: dict[str, int] = dict.fromkeys(_SUM_KEYS, 0)

    def _apply(self, record: TelemetryRecord, sign: int) -> None:
        """Add (+1) or retract (-1) one record's summary contribution.

        Must be called with ``self._lock`` held. Every key is additive,
        so eviction and in-place annotation are exact retractions.
        """
        s = self._sums
        if record.status == "error":
            s["errors"] += sign
        if record.result_cache_hit:
            s["result_cache_hits"] += sign
        if record.predicate_cache_hit:
            s["predicate_cache_hits"] += sign
        if record.plan_cache_hit:
            s["plan_cache_hits"] += sign
        if record.degraded:
            s["degraded_queries"] += sign
        if record.retries:
            s["retried_queries"] += sign
        s["data_cache_hits"] += sign * record.data_cache_hits
        s["data_cache_misses"] += sign * record.data_cache_misses
        s["data_cache_bytes_saved"] += (
            sign * record.data_cache_bytes_saved)
        s["wal_appends"] += sign * record.wal_appends
        s["wal_bytes"] += sign * record.wal_bytes
        s["partitions_total"] += sign * record.partitions_total
        s["partitions_pruned"] += sign * record.partitions_pruned
        s["bytes_scanned"] += sign * record.bytes_scanned
        s["rows_returned"] += sign * record.rows_returned
        if record.kind == "recluster":
            s["recluster_slices"] += sign
            s["recluster_partitions_rewritten"] += (
                sign * record.partitions_rewritten)
            s["recluster_bytes_rewritten"] += (
                sign * record.bytes_rewritten)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def record(self, record: TelemetryRecord) -> TelemetryRecord:
        """Append one record, evicting the oldest when full."""
        with self._lock:
            if len(self._records) == self.capacity:
                evicted = self._records[0]
                self._by_id.pop(evicted.query_id, None)
                self._apply(evicted, -1)
                self.dropped += 1
            self._records.append(record)
            if record.query_id:
                self._by_id[record.query_id] = record
            self._apply(record, +1)
            self.total_recorded += 1
        return record

    def annotate(self, query_id: str, **fields: Any) -> bool:
        """Merge fields into the record for ``query_id``.

        Returns False when the record was never written or has been
        evicted (the caller may then record a fresh one).
        """
        with self._lock:
            record = self._by_id.get(query_id)
            if record is None:
                return False
            # The record is mutated in place, so retract its summary
            # contribution, apply the fields, then re-add it.
            self._apply(record, -1)
            try:
                for key, value in fields.items():
                    if not hasattr(record, key):
                        raise AttributeError(
                            f"TelemetryRecord has no field {key!r}")
                    setattr(record, key, value)
            finally:
                self._apply(record, +1)
            return True

    def get(self, query_id: str) -> TelemetryRecord | None:
        """The retained record for ``query_id``, if any."""
        with self._lock:
            return self._by_id.get(query_id)

    def records(self) -> list[TelemetryRecord]:
        """Snapshot of retained records, oldest first."""
        with self._lock:
            return list(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self._by_id.clear()
            self._sums = dict.fromkeys(_SUM_KEYS, 0)

    def slow_queries(self, n: int = 10) -> list[TelemetryRecord]:
        """The ``n`` slowest retained queries (by simulated time)
        above the ``slow_query_ms`` threshold, slowest first."""
        with self._lock:
            slow = [r for r in self._records
                    if r.simulated_ms >= self.slow_query_ms]
        slow.sort(key=lambda r: r.simulated_ms, reverse=True)
        return slow[:n]

    def summary(self) -> dict[str, Any]:
        """Counter roll-up for ``service.describe()`` and dashboards.

        O(1): reads the running sums maintained by ``record`` /
        ``annotate`` / eviction rather than re-walking the ring.
        """
        with self._lock:
            sums = dict(self._sums)
            total = self.total_recorded
            dropped = self.dropped
            n = len(self._records)
        pruned = sums["partitions_pruned"]
        population = sums["partitions_total"]
        summary: dict[str, Any] = {
            "recorded": total,
            "retained": n,
            "dropped": dropped,
        }
        summary.update(sums)
        summary["fleet_pruning_ratio"] = (
            round(pruned / population, 6) if population else 0.0)
        return summary

    def export_json(self, path=None) -> str:
        """All retained records as a JSON document; optionally written
        to ``path``."""
        payload = {
            "summary": self.summary(),
            "records": [r.to_dict() for r in self.records()],
        }
        text = json.dumps(payload, indent=2) + "\n"
        if path is not None:
            from pathlib import Path

            Path(path).write_text(text)
        return text

    def extend(self, records: Iterable[TelemetryRecord]) -> None:
        """Bulk-record (workload replay into a fresh sink)."""
        for record in records:
            self.record(record)
