"""Fleet-level aggregation of telemetry records (§7-style figures).

Takes a window of :class:`~repro.obs.telemetry.TelemetryRecord` (from a
:class:`~repro.obs.telemetry.TelemetrySink` or a workload run) and
reproduces the shape of the paper's fleet study:

* per-technique **pruning-ratio CDFs** over the queries eligible for
  each technique (the paper's headline figures — e.g. "filter pruning
  removes >99% of partitions for a large fraction of queries");
* **latency percentile histograms** (compile, exec, wall) via
  :func:`repro.bench.stats.describe`;
* cache-hit / degradation / retry **fleet counters**;
* a **slow-query log**.

Rendering reuses :mod:`repro.bench.reporting` so the fleet report looks
like the benchmark reports quoted in EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from typing import Any, Sequence

from ..bench.reporting import Report, render_cdf
from ..bench.stats import describe, percentile
from ..pruning.base import PruneCategory
from .telemetry import TelemetryRecord

__all__ = [
    "TECHNIQUES",
    "technique_ratio_cdfs",
    "data_cache_hit_ratio_cdf",
    "compile_latency_cdf",
    "latency_percentiles",
    "fleet_summary",
    "fleet_json",
    "render_fleet_report",
]

#: aggregation order for the paper's four techniques plus the
#: secondary-sketch pass layered on top of filter pruning
TECHNIQUES: tuple[str, ...] = (
    PruneCategory.FILTER,
    PruneCategory.SKETCH,
    PruneCategory.JOIN,
    PruneCategory.LIMIT,
    PruneCategory.TOPK,
)

#: CDF thresholds for pruning ratios (fractions of the population)
RATIO_POINTS: tuple[float, ...] = (
    0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0)

#: latency percentiles quoted per timing dimension
LATENCY_QS: tuple[float, ...] = (50, 75, 90, 95, 99, 100)


def _executed(records: Sequence[TelemetryRecord]
              ) -> list[TelemetryRecord]:
    """Records of queries that actually ran (errors and result-cache
    hits carry no pruning counters; background maintenance records are
    not queries)."""
    return [r for r in records
            if r.status == "ok" and not r.result_cache_hit
            and r.kind != "recluster"]


def _maintenance(records: Sequence[TelemetryRecord]
                 ) -> list[TelemetryRecord]:
    """Background recluster-slice records (kind == "recluster")."""
    return [r for r in records if r.kind == "recluster"]


def technique_ratio_cdfs(
        records: Sequence[TelemetryRecord],
        points: Sequence[float] = RATIO_POINTS,
) -> dict[str, list[tuple[float, float]]]:
    """Per-technique CDFs of the pruning ratio, over eligible queries.

    A query only enters a technique's distribution when the technique
    was *eligible* for it (the paper's CDFs are conditioned the same
    way); a technique no query was eligible for maps to an empty list.
    """
    from ..bench.stats import cdf_points

    cdfs: dict[str, list[tuple[float, float]]] = {}
    executed = _executed(records)
    for technique in TECHNIQUES:
        ratios = [r.technique_ratio(technique) for r in executed
                  if technique in r.eligible_techniques
                  and r.partitions_total > 0]
        cdfs[technique] = (cdf_points(ratios, points)
                           if ratios else [])
    return cdfs


def data_cache_hit_ratio_cdf(
        records: Sequence[TelemetryRecord],
        points: Sequence[float] = RATIO_POINTS,
) -> list[tuple[float, float]]:
    """CDF of the per-query data-cache hit ratio, over the queries
    whose scans consulted the cache at all (empty when data caching
    was off for the whole window)."""
    from ..bench.stats import cdf_points

    ratios = [r.data_cache_hit_ratio for r in _executed(records)
              if r.data_cache_hits + r.data_cache_misses > 0]
    return cdf_points(ratios, points) if ratios else []


def compile_latency_cdf(
        records: Sequence[TelemetryRecord],
        qs: Sequence[float] = (10, 25, 50, 75, 90, 95, 99, 100),
) -> list[tuple[float, float]]:
    """CDF of per-query simulated compile time over executed queries.

    Thresholds are derived from the observed distribution (its ``qs``
    quantiles) rather than fixed, so the curve stays readable whether
    the window is all cold compiles or all plan-cache rebinds. Empty
    when no executed record carries a compile time.
    """
    from ..bench.stats import cdf_points

    values = [r.compile_ms for r in _executed(records)]
    if not values or not any(values):
        return []
    thresholds: list[float] = []
    for q in qs:
        point = round(percentile(values, q), 4)
        if not thresholds or point > thresholds[-1]:
            thresholds.append(point)
    return cdf_points(values, thresholds)


def latency_percentiles(
        records: Sequence[TelemetryRecord],
        qs: Sequence[float] = LATENCY_QS,
) -> dict[str, dict[str, float]]:
    """Percentiles for each timing dimension with data.

    Keys are ``compile_ms`` / ``exec_ms`` / ``simulated_ms`` /
    ``wall_ms`` / ``queue_wait_ms``; a dimension that is zero for every
    record (e.g. queue wait outside the service) is omitted.
    """
    executed = _executed(records)
    out: dict[str, dict[str, float]] = {}
    for dimension in ("compile_ms", "exec_ms", "simulated_ms",
                      "wall_ms", "queue_wait_ms"):
        values = [getattr(r, dimension) for r in executed]
        if not values or not any(values):
            continue
        out[dimension] = {
            f"p{q:g}": round(percentile(values, q), 4) for q in qs}
    return out


def fleet_summary(records: Sequence[TelemetryRecord]
                  ) -> dict[str, Any]:
    """Fleet counters over a record window (sink-independent).

    Background recluster slices are accounted separately (the
    ``recluster_*`` keys) and never pollute the query aggregates —
    ``queries`` counts client statements, not maintenance work.
    """
    maintenance = _maintenance(records)
    records = [r for r in records if r.kind != "recluster"]
    executed = _executed(records)
    population = sum(r.partitions_total for r in executed)
    pruned = sum(r.partitions_pruned for r in executed)
    by_technique = {t: 0 for t in TECHNIQUES}
    eligible_counts = {t: 0 for t in TECHNIQUES}
    for record in executed:
        for technique, count in record.pruned_by_technique.items():
            by_technique[technique] = (
                by_technique.get(technique, 0) + count)
        for technique in record.eligible_techniques:
            eligible_counts[technique] = (
                eligible_counts.get(technique, 0) + 1)
    data_hits = sum(r.data_cache_hits for r in executed)
    data_misses = sum(r.data_cache_misses for r in executed)
    plan_hits = sum(1 for r in executed if r.plan_cache_hit)
    return {
        "queries": len(records),
        "executed": len(executed),
        "errors": sum(1 for r in records if r.status == "error"),
        "result_cache_hits": sum(
            1 for r in records if r.result_cache_hit),
        "predicate_cache_hits": sum(
            1 for r in executed if r.predicate_cache_hit),
        "data_cache_hits": data_hits,
        "data_cache_misses": data_misses,
        "data_cache_hit_ratio": round(
            data_hits / (data_hits + data_misses), 6)
        if data_hits + data_misses else 0.0,
        "data_cache_bytes_saved": sum(r.data_cache_bytes_saved
                                      for r in executed),
        "plan_cache_hits": plan_hits,
        "plan_cache_hit_ratio": round(plan_hits / len(executed), 6)
        if executed else 0.0,
        "wal_appends": sum(r.wal_appends for r in records),
        "wal_bytes": sum(r.wal_bytes for r in records),
        "topk_boundary_updates": sum(r.topk_boundary_updates
                                     for r in executed),
        "prefetched_then_skipped": sum(r.prefetched_then_skipped
                                       for r in executed),
        "metadata_only": sum(1 for r in executed if r.metadata_only),
        "degraded_queries": sum(1 for r in executed if r.degraded),
        "retried_queries": sum(1 for r in executed if r.retries),
        "partitions_total": population,
        "partitions_pruned": pruned,
        "partitions_loaded": sum(r.partitions_loaded
                                 for r in executed),
        "fleet_pruning_ratio": round(pruned / population, 6)
        if population else 0.0,
        "pruned_by_technique": by_technique,
        "eligible_queries_by_technique": eligible_counts,
        "rows_scanned": sum(r.rows_scanned for r in executed),
        "rows_returned": sum(r.rows_returned for r in records),
        "bytes_scanned": sum(r.bytes_scanned for r in executed),
        "recluster_slices": len(maintenance),
        "recluster_partitions_rewritten": sum(
            r.partitions_rewritten for r in maintenance),
        "recluster_bytes_rewritten": sum(
            r.bytes_rewritten for r in maintenance),
    }


def fleet_json(records: Sequence[TelemetryRecord]) -> str:
    """The aggregate fleet figures as a JSON document."""
    payload = {
        "summary": fleet_summary(records),
        "pruning_ratio_cdfs": {
            technique: [[t, f] for t, f in points]
            for technique, points in
            technique_ratio_cdfs(records).items()},
        "data_cache_hit_ratio_cdf": [
            [t, f] for t, f in data_cache_hit_ratio_cdf(records)],
        "compile_latency_cdf": [
            [t, f] for t, f in compile_latency_cdf(records)],
        "latency_percentiles": latency_percentiles(records),
    }
    return json.dumps(payload, indent=2) + "\n"


def render_fleet_report(records: Sequence[TelemetryRecord],
                        title: str = "Fleet telemetry report",
                        slow_n: int = 5) -> str:
    """Text fleet report: counters, per-technique pruning-ratio CDFs,
    latency percentile tables, and a slow-query log."""
    report = Report(title)
    summary = fleet_summary(records)
    report.add(f"  queries: {summary['queries']} "
               f"(executed {summary['executed']}, "
               f"errors {summary['errors']}, "
               f"result-cache hits {summary['result_cache_hits']})")
    report.add(f"  partitions: {summary['partitions_total']} total, "
               f"{summary['partitions_pruned']} pruned "
               f"({summary['fleet_pruning_ratio']:.1%}), "
               f"{summary['partitions_loaded']} loaded")
    report.add(f"  predicate-cache hits: "
               f"{summary['predicate_cache_hits']}, metadata-only: "
               f"{summary['metadata_only']}, degraded: "
               f"{summary['degraded_queries']}, retried: "
               f"{summary['retried_queries']}")
    if summary["data_cache_hits"] or summary["data_cache_misses"]:
        report.add(f"  data cache: {summary['data_cache_hits']} hits "
                   f"/ {summary['data_cache_misses']} misses "
                   f"({summary['data_cache_hit_ratio']:.1%}), "
                   f"{summary['data_cache_bytes_saved']} bytes saved")
    if summary["plan_cache_hits"]:
        report.add(f"  plan cache: {summary['plan_cache_hits']} of "
                   f"{summary['executed']} executed queries served "
                   f"from cached plans "
                   f"({summary['plan_cache_hit_ratio']:.1%})")
    if summary["wal_appends"]:
        report.add(f"  durability: {summary['wal_appends']} WAL "
                   f"appends / {summary['wal_bytes']} bytes logged")
    if summary["recluster_slices"]:
        report.add(f"  reclustering: {summary['recluster_slices']} "
                   f"background slices rewrote "
                   f"{summary['recluster_partitions_rewritten']} "
                   f"partitions "
                   f"({summary['recluster_bytes_rewritten']} bytes)")
    if summary["topk_boundary_updates"] \
            or summary["prefetched_then_skipped"]:
        report.add(f"  runtime pruning: "
                   f"{summary['topk_boundary_updates']} boundary "
                   f"updates, {summary['prefetched_then_skipped']} "
                   f"speculative loads discarded")
    report.add(f"  rows scanned: {summary['rows_scanned']}, "
               f"returned: {summary['rows_returned']}, bytes "
               f"scanned: {summary['bytes_scanned']}")

    report.add()
    report.add("Per-technique pruning-ratio CDFs "
               "(fraction of eligible queries with ratio <= x):")
    eligible = summary["eligible_queries_by_technique"]
    for technique, points in technique_ratio_cdfs(records).items():
        if not points:
            report.add(f"  {technique}: no eligible queries")
            continue
        label = (f"{technique} pruning ratio "
                 f"({eligible.get(technique, 0)} eligible queries)")
        report.add(render_cdf(points, label=label))
        report.add()

    cache_cdf = data_cache_hit_ratio_cdf(records)
    if cache_cdf:
        queries = sum(
            1 for r in _executed(records)
            if r.data_cache_hits + r.data_cache_misses > 0)
        report.add(render_cdf(
            cache_cdf,
            label=f"data-cache hit ratio ({queries} queries "
                  f"with cache traffic)"))
        report.add()

    compile_cdf = compile_latency_cdf(records)
    if compile_cdf:
        executed_n = len(_executed(records))
        report.add(render_cdf(
            compile_cdf,
            label=f"compile latency ms ({executed_n} executed "
                  f"queries)"))
        report.add()

    percentiles = latency_percentiles(records)
    if percentiles:
        report.add("Latency percentiles (ms):")
        qs = [f"p{q:g}" for q in LATENCY_QS]
        rows = [[dimension, *[values[q] for q in qs]]
                for dimension, values in percentiles.items()]
        report.table(["dimension", *qs], rows)
        executed = _executed(records)
        if executed:
            box = describe([r.simulated_ms for r in executed])
            report.add(f"  simulated_ms: mean {box.mean:.2f}, "
                       f"median {box.median:.2f}, p90 {box.p90:.2f}, "
                       f"max {box.maximum:.2f}")

    slow = sorted((r for r in _executed(records)),
                  key=lambda r: r.simulated_ms, reverse=True)[:slow_n]
    if slow:
        report.add()
        report.add(f"Slowest {len(slow)} queries (simulated ms):")
        report.table(
            ["query_id", "ms", "parts", "pruned", "rows", "sql"],
            [[r.query_id, round(r.simulated_ms, 2),
              r.partitions_total, r.partitions_pruned,
              r.rows_returned,
              (r.sql[:57] + "...") if len(r.sql) > 60 else r.sql]
             for r in slow])
    return report.render()
