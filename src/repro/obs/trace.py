"""Hierarchical trace spans for one query execution.

The paper's evaluation is built from per-query telemetry; operating
the fleet additionally needs to see *where* a single query spent its
time — parsing, planning, pruning per technique, scanning, retrying.
A :class:`Tracer` records that as a tree of :class:`Span` objects,
attached to the query's :class:`~repro.engine.context.QueryProfile`
and rendered by ``EXPLAIN ANALYZE``.

Design constraints:

* **Cheap.** A traced query creates a handful of spans (not one per
  partition); each span is two ``perf_counter`` calls plus a list
  append, so tracing can stay on in production (< 5% overhead on the
  scan benchmarks, gated in ``BENCH_PR4.json``).
* **Generator-safe.** Operators are pull-based generators that can be
  abandoned early (LIMIT). Compile-time spans use a well-nested stack
  (:meth:`Tracer.span`); runtime spans (scans) are parented explicitly
  via :meth:`Tracer.start_span` so an out-of-order end cannot corrupt
  the tree, and :meth:`Tracer.finish` closes anything left open.
* **Single-threaded.** A tracer belongs to one query and is only
  touched from the query's executing thread (morsel workers never
  trace; the consumer thread records on their behalf).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = ["Span", "Tracer", "render_span_tree"]


class Span:
    """One named, timed segment of a query, with attributes and
    children. ``end_s`` is ``None`` while the span is open; an *event*
    is a span whose start and end coincide."""

    __slots__ = ("name", "attrs", "children", "start_s", "end_s")

    def __init__(self, name: str, attrs: dict[str, Any] | None = None):
        self.name = name
        self.attrs: dict[str, Any] = dict(attrs) if attrs else {}
        self.children: list[Span] = []
        self.start_s: float = time.perf_counter()
        self.end_s: float | None = None

    @property
    def finished(self) -> bool:
        return self.end_s is not None

    @property
    def duration_ms(self) -> float:
        """Wall-clock duration; 0.0 while still open."""
        if self.end_s is None:
            return 0.0
        return (self.end_s - self.start_s) * 1e3

    def end(self) -> None:
        """Close the span (idempotent: the first end wins)."""
        if self.end_s is None:
            self.end_s = time.perf_counter()

    def annotate(self, **attrs: Any) -> "Span":
        """Merge attributes into the span; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def iter_spans(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def find(self, name: str) -> "Span | None":
        """First span (depth-first) whose name matches exactly."""
        for span in self.iter_spans():
            if span.name == name:
                return span
        return None

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly nested representation."""
        return {
            "name": self.name,
            "duration_ms": round(self.duration_ms, 4),
            "attrs": dict(self.attrs),
            "children": [c.to_dict() for c in self.children],
        }

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, {self.duration_ms:.3f} ms, "
                f"children={len(self.children)})")


class Tracer:
    """Builds one query's span tree.

    Two recording styles coexist:

    * :meth:`span` — a context manager pushing onto a stack; children
      recorded inside nest under it. For compile-time phases, which
      are strictly nested.
    * :meth:`start_span` / ``span.end()`` — explicit parenting without
      touching the stack. For runtime generators (scans) that may be
      suspended or abandoned; a missing ``end()`` is repaired by
      :meth:`finish`.
    """

    def __init__(self, name: str = "query"):
        self.root = Span(name)
        self._stack: list[Span] = [self.root]

    @property
    def current(self) -> Span:
        """The innermost open stack span (events parent here)."""
        return self._stack[-1]

    @contextmanager
    def span(self, name: str, parent: Span | None = None,
             **attrs: Any) -> Iterator[Span]:
        """Record a well-nested span around a ``with`` block."""
        span = Span(name, attrs)
        (parent or self._stack[-1]).children.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            span.end()
            # Tolerate a stack disturbed by an abandoned generator:
            # remove this span wherever it sits instead of blindly
            # popping the top.
            if span in self._stack:
                del self._stack[self._stack.index(span):]

    def start_span(self, name: str, parent: Span | None = None,
                   **attrs: Any) -> Span:
        """Open a span under ``parent`` (or the current stack span)
        without pushing it onto the stack. Caller ends it."""
        span = Span(name, attrs)
        (parent or self._stack[-1]).children.append(span)
        return span

    def event(self, name: str, parent: Span | None = None,
              **attrs: Any) -> Span:
        """A zero-duration marker (retry, cache hit, degradation)."""
        span = Span(name, attrs)
        span.end_s = span.start_s
        (parent or self._stack[-1]).children.append(span)
        return span

    def finish(self) -> Span:
        """Close the root (and any span left open) and return it."""
        self.root.end()
        for span in self.root.iter_spans():
            if span.end_s is None:
                # Abandoned runtime span (early-terminated scan):
                # clamp to the root's end so durations stay sane.
                span.end_s = self.root.end_s
        del self._stack[1:]
        return self.root


def _format_attrs(attrs: dict[str, Any]) -> str:
    if not attrs:
        return ""
    parts = []
    for key, value in attrs.items():
        if isinstance(value, float):
            parts.append(f"{key}={value:.4g}")
        else:
            parts.append(f"{key}={value}")
    return f" [{', '.join(parts)}]"


def render_span_tree(root: Span, indent: str = "  ") -> str:
    """Multi-line text rendering of a span tree::

        query                          4.21 ms
          parse                        0.05 ms
          compile                      1.10 ms
            prune:filter               0.80 ms [table=t, before=20, after=3]
          execute                      2.90 ms
            scan:t                     2.80 ms [partitions=3, rows=300]
              retry                      ·    [error=StorageTimeout]

    Events (zero-duration spans) print ``·`` instead of a duration.
    """
    lines: list[str] = []
    _render(root, lines, depth=0, indent=indent)
    name_width = max((len(line[0]) for line in lines), default=0)
    return "\n".join(
        f"{name.ljust(name_width)}  {timing}{attrs}"
        for name, timing, attrs in lines)


def _render(span: Span, lines: list[tuple[str, str, str]], depth: int,
            indent: str) -> None:
    name = f"{indent * depth}{span.name}"
    is_event = span.end_s is not None and span.end_s == span.start_s
    timing = f"{'·':>7}   " if is_event else \
        f"{span.duration_ms:7.2f} ms"
    lines.append((name, timing, _format_attrs(span.attrs)))
    for child in span.children:
        _render(child, lines, depth + 1, indent)
