"""Exception hierarchy for the repro engine.

All engine-raised errors derive from :class:`ReproError` so callers can
catch engine failures without masking programming errors (``TypeError``
raised by misuse of the Python API is intentionally *not* wrapped).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A schema is malformed or an operation references an unknown column."""


class TypeMismatchError(ReproError):
    """An expression or operator combined incompatible SQL types."""


class ParseError(ReproError):
    """The SQL text could not be parsed.

    Attributes:
        position: character offset into the SQL text where parsing failed,
            or ``None`` when the failure has no single location.
    """

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class PlanError(ReproError):
    """A logical plan could not be built or compiled."""


class ExecutionError(ReproError):
    """A physical operator failed during query execution."""


class StorageError(ReproError):
    """The storage layer rejected an operation (missing partition, etc.)."""


class MetadataError(ReproError):
    """Partition metadata is missing or inconsistent."""
