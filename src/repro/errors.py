"""Exception hierarchy for the repro engine.

All engine-raised errors derive from :class:`ReproError` so callers can
catch engine failures without masking programming errors (``TypeError``
raised by misuse of the Python API is intentionally *not* wrapped).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A schema is malformed or an operation references an unknown column."""


class TypeMismatchError(ReproError):
    """An expression or operator combined incompatible SQL types."""


class ParseError(ReproError):
    """The SQL text could not be parsed.

    Attributes:
        position: character offset into the SQL text where parsing failed,
            or ``None`` when the failure has no single location.
    """

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class PlanError(ReproError):
    """A logical plan could not be built or compiled."""


class ExecutionError(ReproError):
    """A physical operator failed during query execution."""


class StorageError(ReproError):
    """The storage layer rejected an operation (missing partition, etc.)."""


class MetadataError(ReproError):
    """Partition metadata is missing or inconsistent."""


class DurabilityError(StorageError):
    """The durability subsystem (WAL / checkpoint / recovery) rejected
    an operation — e.g. recovering into a non-empty catalog."""


class WalCorruptionError(DurabilityError):
    """A write-ahead-log record in the *interior* of the log failed its
    CRC or sequence check.

    Interior corruption means committed history is damaged, so recovery
    fails closed instead of silently replaying a prefix. A torn or
    truncated *final* record is the expected signature of a crash
    mid-append and is tolerated (the mutation never committed).
    """


# ----------------------------------------------------------------------
# Fault / resilience hierarchy (repro.faults)
#
# Cloud object storage and the metadata KV service are separate
# networks that throttle, time out, and corrupt bytes. Transient
# classes derive from :class:`TransientError` so retry policies can
# decide retryability structurally; permanent classes do not.
# ----------------------------------------------------------------------
class TransientError(ReproError):
    """A failure that may succeed on retry (timeout, throttling)."""


class StorageTimeout(TransientError, StorageError):
    """An object-storage request timed out."""


class StorageThrottled(TransientError, StorageError):
    """Object storage rejected a request with a slow-down signal."""


class CorruptionError(StorageError):
    """A loaded partition failed checksum verification.

    Corruption is modelled as a wire-level fault, so a re-read may
    succeed; retry policies treat it as retryable by default.

    Attributes:
        partition_id: the partition whose bytes failed verification,
            or ``None`` when unknown.
    """

    def __init__(self, message: str, partition_id: int | None = None):
        super().__init__(message)
        self.partition_id = partition_id


class PartitionUnavailableError(StorageError):
    """A partition is permanently unreachable (deleted blob, lost
    replica). Not retryable: the query must fail with a typed error.

    Attributes:
        partition_id: the unreachable partition, or ``None``.
    """

    def __init__(self, message: str, partition_id: int | None = None):
        super().__init__(message)
        self.partition_id = partition_id


class MetadataTimeout(TransientError, MetadataError):
    """A metadata KV lookup timed out."""


class MetadataThrottled(TransientError, MetadataError):
    """The metadata KV service rejected a lookup under load."""


class MetadataUnavailableError(MetadataError):
    """The metadata service is down (outage). Pruning layers fail
    open: the scan proceeds without metadata instead of failing."""


class CircuitOpenError(MetadataError):
    """A circuit breaker is open and the call was rejected without
    reaching the backing service."""


class QueryTimeout(ReproError):
    """A query exceeded its caller-supplied end-to-end deadline."""
