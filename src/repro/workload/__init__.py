"""Synthetic workloads calibrated to the paper's published statistics.

The paper's evaluation runs on Snowflake's production fleet, which we
replace with a generator (:mod:`.generator`) whose knobs reproduce the
aggregates the paper reports: the query-type mix of Table 1, the
LIMIT-k distribution of Figure 6 (:mod:`.distributions`), high
real-world predicate selectivity (§3.3/§8.3), small join build sides
(§6), and Zipf-like plan-shape repetitiveness (Figure 12). SQL-text
classification for Table 1 lives in :mod:`.classify`, and the mini
TPC-H substrate for Figure 13 in :mod:`.tpch`.
"""

from .distributions import (
    sample_limit_k,
    sample_selectivity,
    zipf_template_index,
)
from .classify import QueryClass, classify_sql
from .generator import (
    GeneratedQuery,
    Platform,
    PlatformConfig,
    QueryMix,
    WorkloadGenerator,
)

__all__ = [
    "sample_limit_k",
    "sample_selectivity",
    "zipf_template_index",
    "QueryClass",
    "classify_sql",
    "GeneratedQuery",
    "Platform",
    "PlatformConfig",
    "QueryMix",
    "WorkloadGenerator",
]
