"""Sampling distributions calibrated to the paper's aggregates.

* :func:`sample_limit_k` matches Figure 6: "most queries have k = 0 or
  k = 1", 97% have k <= 10,000, and 99.9% have k <= 2,000,000. BI
  tools contribute point masses at round numbers (LIMIT 0 schema
  probes, LIMIT 10/100/1000 dashboards).
* :func:`sample_selectivity` matches the §3.3/§8.3 observation that
  real-world predicates are far more selective than TPC-H's.
* :func:`zipf_template_index` drives plan-shape repetitiveness
  (Figure 12: "most query plan shapes appear only once").
"""

from __future__ import annotations

import math
import random

#: (k value, probability) point masses for LIMIT k; the remainder is a
#: log-uniform tail. Cumulative mass through 10_000 is ~0.97 (Figure 6).
_LIMIT_POINT_MASSES = (
    (0, 0.20),
    (1, 0.25),
    (10, 0.13),
    (20, 0.05),
    (100, 0.13),
    (500, 0.04),
    (1000, 0.09),
    (5000, 0.04),
    (10000, 0.04),
)
_LIMIT_TAIL_SMALL = 0.020   # (10k, 100k], log-uniform
_LIMIT_TAIL_LARGE = 0.009   # (100k, 2M], log-uniform
_LIMIT_TAIL_HUGE = 0.001    # (2M, 100M], log-uniform


def sample_limit_k(rng: random.Random) -> int:
    """Draw a LIMIT k from the Figure 6 distribution."""
    u = rng.random()
    cumulative = 0.0
    for value, mass in _LIMIT_POINT_MASSES:
        cumulative += mass
        if u < cumulative:
            return value
    cumulative_small = cumulative + _LIMIT_TAIL_SMALL
    if u < cumulative_small:
        return _log_uniform_int(rng, 10_001, 100_000)
    cumulative_large = cumulative_small + _LIMIT_TAIL_LARGE
    if u < cumulative_large:
        return _log_uniform_int(rng, 100_001, 2_000_000)
    return _log_uniform_int(rng, 2_000_001, 100_000_000)


def _log_uniform_int(rng: random.Random, lo: int, hi: int) -> int:
    return int(round(math.exp(rng.uniform(math.log(lo), math.log(hi)))))


def sample_selectivity(rng: random.Random) -> float:
    """Draw a predicate selectivity (fraction of rows matching).

    Real-world analytical predicates are highly selective (§3.3): the
    mixture puts most mass below 1% with a moderate and a
    non-selective tail (the latter produces the ~27% of queries whose
    filters prune nothing in Figure 4).
    """
    u = rng.random()
    if u < 0.50:
        # highly selective: 0.01% .. 1%
        return math.exp(rng.uniform(math.log(1e-4), math.log(1e-2)))
    if u < 0.80:
        # moderately selective: 1% .. 20%
        return math.exp(rng.uniform(math.log(1e-2), math.log(0.2)))
    # non-selective: 20% .. 100%
    return rng.uniform(0.2, 1.0)


def zipf_template_index(rng: random.Random, n_templates: int,
                        alpha: float = 1.3) -> int:
    """Draw a template index with Zipf popularity (rank-frequency).

    Index 0 is the most popular template; high indexes are the long
    tail of shapes that appear only once or twice.
    """
    weights = [1.0 / (rank + 1) ** alpha for rank in range(n_templates)]
    total = sum(weights)
    u = rng.random() * total
    cumulative = 0.0
    for index, weight in enumerate(weights):
        cumulative += weight
        if u < cumulative:
            return index
    return n_templates - 1
