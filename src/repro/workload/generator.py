"""The synthetic platform and workload generator.

Builds a miniature "data platform" — many small tables, some medium and
large fact tables with varying physical layouts, and dimension tables —
then generates SQL workloads whose mix follows the paper's Table 1 and
whose predicate selectivities follow the real-world distribution of
§3.3. Running these workloads through the engine reproduces the
distributional figures (1, 4, 8, 9, 10, 11, 12) and tables (1, 2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable

from ..catalog import Catalog
from ..storage.clustering import Layout
from ..types import DataType, Schema
from .distributions import (
    sample_limit_k,
    sample_selectivity,
    zipf_template_index,
)

FACT_SCHEMA = Schema.of(
    ts=DataType.INTEGER,        # event time; the clustering key
    category=DataType.VARCHAR,  # low-cardinality attribute
    value=DataType.DOUBLE,
    score=DataType.INTEGER,     # uncorrelated ranking column
    fk=DataType.INTEGER,        # foreign key into a dimension table
)

DIM_SCHEMA = Schema.of(
    key=DataType.INTEGER,
    attr=DataType.VARCHAR,
    weight=DataType.INTEGER,
)

CATEGORIES = tuple(f"cat{i:02d}" for i in range(8))
SCORE_MAX = 1_000_000


@dataclass
class TableSpec:
    """Shape of one generated table."""

    name: str
    kind: str              #: "fact" or "dim"
    n_partitions: int
    layout: str            #: sorted / clustered / random (facts only)
    rows: int = 0
    ts_max: int = 0
    dim_keys: int = 0      #: size of the dimension this fact points at
    fk_correlated: bool = True


@dataclass
class PlatformConfig:
    """Size and mix of the synthetic platform."""

    seed: int = 0
    rows_per_partition: int = 200
    n_small_tables: int = 10     #: single-partition tables (BI lookups)
    n_medium_tables: int = 6     #: 4..16 partitions
    n_large_tables: int = 4      #: 30..80 partitions
    n_xlarge_tables: int = 0     #: 150..300 partitions (fact giants)
    n_dim_tables: int = 3
    dim_rows: int = 256
    #: physical layouts cycled over fact tables
    layouts: tuple[str, ...] = ("sorted", "clustered", "random",
                                "sorted")


class Platform:
    """A populated catalog plus the specs of its tables."""

    def __init__(self, config: PlatformConfig | None = None):
        self.config = config or PlatformConfig()
        self.catalog = Catalog(
            rows_per_partition=self.config.rows_per_partition)
        self.specs: dict[str, TableSpec] = {}
        self.fact_tables: list[str] = []
        self.dim_tables: list[str] = []
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        rng = random.Random(self.config.seed)
        sizes: list[tuple[str, int]] = []
        for i in range(self.config.n_small_tables):
            sizes.append((f"small{i:02d}", 1))
        for i in range(self.config.n_medium_tables):
            sizes.append((f"medium{i:02d}", rng.randint(4, 16)))
        for i in range(self.config.n_large_tables):
            sizes.append((f"large{i:02d}", rng.randint(30, 80)))
        for i in range(self.config.n_xlarge_tables):
            sizes.append((f"xlarge{i:02d}", rng.randint(150, 300)))
        for index, (name, n_partitions) in enumerate(sizes):
            if name.startswith("xlarge"):
                # Giant fact tables are kept clustered in practice
                # (auto-clustering exists precisely for them).
                layout = "sorted" if index % 2 == 0 else "clustered"
            else:
                layout = self.config.layouts[
                    index % len(self.config.layouts)]
            self._build_fact(rng, name, n_partitions, layout)
        for i in range(self.config.n_dim_tables):
            self._build_dim(rng, f"dim{i:02d}")

    def _build_fact(self, rng: random.Random, name: str,
                    n_partitions: int, layout: str) -> None:
        rows_per_partition = self.config.rows_per_partition
        n_rows = n_partitions * rows_per_partition
        ts_max = n_rows
        dim_keys = self.config.dim_rows
        fk_correlated = layout != "random"
        rows = []
        for i in range(n_rows):
            ts = rng.randrange(ts_max)
            if fk_correlated:
                # fk tracks event time (e.g. a date dimension), with a
                # little noise, so fk ranges per partition are narrow
                # on sorted tables.
                base = ts * dim_keys // max(1, ts_max)
                fk = min(dim_keys - 1,
                         max(0, base + rng.randint(-4, 4)))
            else:
                fk = rng.randrange(dim_keys)
            rows.append((
                ts,
                rng.choice(CATEGORIES),
                rng.uniform(0.0, 1000.0),
                rng.randrange(SCORE_MAX),
                fk,
            ))
        layouts = {
            "sorted": Layout.sorted_by("ts"),
            "clustered": Layout.clustered_by(
                "ts", jitter=rows_per_partition // 3, seed=rng.randrange(
                    1 << 30)),
            "random": Layout.random(seed=rng.randrange(1 << 30)),
        }
        self.catalog.create_table_from_rows(
            name, FACT_SCHEMA, rows, layout=layouts[layout],
            rows_per_partition=rows_per_partition)
        self.specs[name] = TableSpec(
            name=name, kind="fact", n_partitions=n_partitions,
            layout=layout, rows=n_rows, ts_max=ts_max,
            dim_keys=dim_keys, fk_correlated=fk_correlated)
        self.fact_tables.append(name)

    def _build_dim(self, rng: random.Random, name: str) -> None:
        n_rows = self.config.dim_rows
        block = max(1, n_rows // len(CATEGORIES))
        rows = []
        for key in range(n_rows):
            # Contiguous key blocks per attribute value: a selective
            # attr filter yields a compact key range, which the
            # range-set summary can exploit on the probe side (§6.1).
            attr = CATEGORIES[min(len(CATEGORIES) - 1, key // block)]
            rows.append((key, attr, rng.randrange(1000)))
        self.catalog.create_table_from_rows(
            name, DIM_SCHEMA, rows,
            rows_per_partition=self.config.rows_per_partition)
        self.specs[name] = TableSpec(
            name=name, kind="dim", n_partitions=1, layout="natural",
            rows=n_rows)
        self.dim_tables.append(name)


@dataclass
class QueryMix:
    """Workload composition, calibrated to Table 1 and Figure 11.

    Fractions sum to 1. LIMIT queries are 2.60% of SELECTs (0.37%
    without predicate, 2.23% with); top-k queries are 5.55% (4.47%
    plain, 0.12% grouped by the ordering key, 0.96% ordered by an
    aggregate).
    """

    select_pred: float = 0.5985
    select_nopred: float = 0.12
    join: float = 0.20
    limit_nopred: float = 0.0037
    limit_pred: float = 0.0223
    topk_plain: float = 0.0447
    topk_group_key: float = 0.0012
    topk_group_agg: float = 0.0096

    def kinds(self) -> list[tuple[str, float]]:
        return [
            ("select_pred", self.select_pred),
            ("select_nopred", self.select_nopred),
            ("join", self.join),
            ("limit_nopred", self.limit_nopred),
            ("limit_pred", self.limit_pred),
            ("topk_plain", self.topk_plain),
            ("topk_group_key", self.topk_group_key),
            ("topk_group_agg", self.topk_group_agg),
        ]


@dataclass
class GeneratedQuery:
    """One generated workload query."""

    sql: str
    kind: str
    tables: list[str] = field(default_factory=list)


class WorkloadGenerator:
    """Draws queries from the mix against a platform's tables."""

    def __init__(self, platform: Platform,
                 mix: QueryMix | None = None, seed: int = 1):
        self.platform = platform
        self.mix = mix or QueryMix()
        self.rng = random.Random(seed)

    # ------------------------------------------------------------------
    def generate(self, n_queries: int) -> list[GeneratedQuery]:
        return [self._one_query() for _ in range(n_queries)]

    def generate_of_kind(self, kind: str,
                         n_queries: int) -> list[GeneratedQuery]:
        """Generate queries of one specific kind (for focused benches)."""
        return [self._dispatch(kind) for _ in range(n_queries)]

    def _one_query(self) -> GeneratedQuery:
        u = self.rng.random()
        cumulative = 0.0
        for kind, fraction in self.mix.kinds():
            cumulative += fraction
            if u < cumulative:
                return self._dispatch(kind)
        return self._dispatch("select_pred")

    def _dispatch(self, kind: str) -> GeneratedQuery:
        builders = {
            "select_pred": self._select_pred,
            "select_nopred": self._select_nopred,
            "join": self._join,
            "limit_nopred": self._limit_nopred,
            "limit_pred": self._limit_pred,
            "topk_plain": self._topk_plain,
            "topk_group_key": self._topk_group_key,
            "topk_group_agg": self._topk_group_agg,
        }
        return builders[kind]()

    # -- building blocks ---------------------------------------------------
    def _fact(self) -> TableSpec:
        """Size-biased pick: bigger tables attract more queries.

        Production fleets are heavy-tailed in both table size and
        access frequency; weighting by partition count makes the
        platform-wide denominators behave like the paper's (where a
        handful of giant, well-clustered tables dominate).
        """
        specs = [self.platform.specs[n]
                 for n in self.platform.fact_tables]
        weights = [float(spec.n_partitions) for spec in specs]
        return self.rng.choices(specs, weights=weights, k=1)[0]

    def _large_fact(self) -> TableSpec:
        candidates = [
            self.platform.specs[n] for n in self.platform.fact_tables
            if self.platform.specs[n].n_partitions > 1]
        return self.rng.choice(candidates)

    def _small_fact(self) -> TableSpec:
        """A size-biased pick favouring small tables.

        Full-table reads and bare LIMIT probes overwhelmingly target
        small lookup tables in real fleets; nobody lists a billion-row
        fact table unfiltered.
        """
        specs = [self.platform.specs[n]
                 for n in self.platform.fact_tables]
        weights = [spec.n_partitions ** -0.5 for spec in specs]
        return self.rng.choices(specs, weights=weights, k=1)[0]

    def _predicate(self, spec: TableSpec,
                   selectivity: float | None = None) -> str:
        """A WHERE clause body with roughly the target selectivity."""
        if selectivity is None:
            selectivity = sample_selectivity(self.rng)
        large = spec.n_partitions >= 30
        roll = self.rng.random()
        if roll < 0.08:
            # Occasionally empty-result predicates: they prune 100% of
            # partitions and trigger sub-tree elimination.
            return f"ts > {spec.ts_max * 2}"
        # Large fact tables are overwhelmingly filtered on their
        # clustering (time) key, and selectively — scanning most of a
        # petabyte-scale table is rare in practice (§3.3).
        ts_share = 0.84 if large else 0.62
        if roll < ts_share:
            if large:
                selectivity = min(selectivity, 0.05)
            width = max(1, int(selectivity * spec.ts_max))
            lo = self.rng.randrange(max(1, spec.ts_max - width + 1))
            return f"ts BETWEEN {lo} AND {lo + width - 1}"
        if roll < ts_share + 0.16:
            category = self.rng.choice(CATEGORIES)
            base = f"category = '{category}'"
            if large and self.rng.random() < 0.75:
                # Dashboards over giant fact tables nearly always carry
                # a time window alongside attribute filters.
                width = max(1, int(min(selectivity, 0.08)
                                   * spec.ts_max))
                lo = self.rng.randrange(
                    max(1, spec.ts_max - width + 1))
                return (f"{base} AND ts BETWEEN {lo} AND "
                        f"{lo + width - 1}")
            return base
        if roll < 0.90:
            threshold = int((1 - selectivity) * SCORE_MAX)
            return f"score >= {threshold}"
        # Complex expression exercising §3.1 range derivation.
        category = self.rng.choice(CATEGORIES)
        threshold = int((1 - selectivity) * spec.ts_max)
        return (f"IF(category = '{category}', ts * 2, ts) "
                f"> {threshold * 2}")

    def _small_k(self) -> int:
        return self.rng.choice((3, 5, 10, 20, 50, 100))

    # -- query kinds ---------------------------------------------------------
    def _select_pred(self) -> GeneratedQuery:
        spec = self._fact()
        sql = (f"SELECT * FROM {spec.name} "
               f"WHERE {self._predicate(spec)}")
        return GeneratedQuery(sql, "select_pred", [spec.name])

    def _select_nopred(self) -> GeneratedQuery:
        spec = self._small_fact()
        return GeneratedQuery(f"SELECT * FROM {spec.name}",
                              "select_nopred", [spec.name])

    def _join(self) -> GeneratedQuery:
        spec = self._large_fact()
        dim = self.rng.choice(self.platform.dim_tables)
        roll = self.rng.random()
        if roll < 0.13:
            # A value inside the attr min/max range that matches no
            # row: metadata cannot prune it (no compile-time sub-tree
            # elimination), so the build side comes up empty at
            # *runtime* and join pruning removes 100% of the probe
            # scan (Figure 10's cluster at 100%).
            dim_filter = "d.attr = 'cat00zzz'"
        else:
            dim_filter = f"d.attr = '{self.rng.choice(CATEGORIES)}'"
        fact_filter = ""
        if self.rng.random() < 0.4:
            fact_filter = f" AND {self._predicate(spec)}"
        sql = (f"SELECT * FROM {spec.name} JOIN {dim} AS d "
               f"ON fk = d.key WHERE {dim_filter}{fact_filter}")
        return GeneratedQuery(sql, "join", [spec.name, dim])

    def _limit_nopred(self) -> GeneratedQuery:
        spec = self._small_fact()
        k = sample_limit_k(self.rng)
        sql = f"SELECT * FROM {spec.name} LIMIT {k}"
        return GeneratedQuery(sql, "limit_nopred", [spec.name])

    def _limit_pred(self) -> GeneratedQuery:
        spec = self.platform.specs[
            self.rng.choice(self.platform.fact_tables)]
        k = sample_limit_k(self.rng)
        # Exploratory LIMIT predicates are ad hoc: mostly on columns
        # unrelated to the clustering key, where fully-matching
        # partitions rarely exist (Table 2's large "unsupported"
        # share for queries with predicates).
        roll = self.rng.random()
        if roll < 0.25:
            predicate = self._predicate(spec)
        elif roll < 0.65:
            predicate = (f"category = "
                         f"'{self.rng.choice(CATEGORIES)}'")
        else:
            threshold = self.rng.randrange(SCORE_MAX)
            predicate = f"score >= {threshold}"
        sql = (f"SELECT * FROM {spec.name} "
               f"WHERE {predicate} LIMIT {k}")
        return GeneratedQuery(sql, "limit_pred", [spec.name])

    def _topk_plain(self) -> GeneratedQuery:
        spec = self._large_fact()
        order_column = self.rng.choice(("ts", "score", "score"))
        k = self._small_k()
        where = ""
        if self.rng.random() < 0.5:
            where = f" WHERE {self._predicate(spec)}"
        direction = "DESC" if self.rng.random() < 0.8 else "ASC"
        sql = (f"SELECT * FROM {spec.name}{where} "
               f"ORDER BY {order_column} {direction} LIMIT {k}")
        return GeneratedQuery(sql, "topk_plain", [spec.name])

    def _topk_group_key(self) -> GeneratedQuery:
        spec = self._large_fact()
        k = self._small_k()
        sql = (f"SELECT ts, count(*) AS c FROM {spec.name} "
               f"GROUP BY ts ORDER BY ts DESC LIMIT {k}")
        return GeneratedQuery(sql, "topk_group_key", [spec.name])

    def _topk_group_agg(self) -> GeneratedQuery:
        spec = self._large_fact()
        k = self._small_k()
        agg = self.rng.choice(("sum(value)", "count(*)", "max(score)"))
        sql = (f"SELECT category, {agg} AS m FROM {spec.name} "
               f"GROUP BY category ORDER BY m DESC LIMIT {k}")
        return GeneratedQuery(sql, "topk_group_agg", [spec.name])

    # -- plan-shape repetitiveness (Figure 12) -----------------------------
    def topk_stream_with_repetition(self, n_queries: int,
                                    n_templates: int | None = None,
                                    alpha: float = 1.05
                                    ) -> list[GeneratedQuery]:
        """Top-k queries drawn from Zipf-popular templates.

        With ``alpha`` close to 1 and a large template pool, most
        templates are drawn at most once — matching Figure 12's "most
        query plan shapes appear only once".
        """
        if n_templates is None:
            n_templates = max(4, int(n_queries * 0.8))
        templates = [self._topk_template() for _ in range(n_templates)]
        stream = []
        for _ in range(n_queries):
            index = zipf_template_index(self.rng, n_templates, alpha)
            stream.append(templates[index])
        return stream

    def _topk_template(self) -> GeneratedQuery:
        """A distinct top-k query template.

        Plan shapes ignore literal values (Figure 12 measures shapes),
        so templates vary *structure*: number and kind of conjuncts,
        IN-list arity, ordering column and direction, and table.
        """
        spec = self._large_fact()
        order_column = self.rng.choice(("ts", "score", "value"))
        direction = self.rng.choice(("DESC", "ASC"))
        k = self._small_k()
        conjuncts = []
        for _ in range(self.rng.randrange(4)):
            kind = self.rng.randrange(6)
            if kind == 0:
                lo = self.rng.randrange(spec.ts_max)
                conjuncts.append(
                    f"ts BETWEEN {lo} AND {lo + 50}")
            elif kind == 1:
                conjuncts.append(
                    f"category = '{self.rng.choice(CATEGORIES)}'")
            elif kind == 2:
                arity = self.rng.randint(2, 6)
                values = ", ".join(
                    f"'{c}'" for c in self.rng.sample(CATEGORIES,
                                                      arity))
                conjuncts.append(f"category IN ({values})")
            elif kind == 3:
                conjuncts.append(
                    f"score >= {self.rng.randrange(SCORE_MAX)}")
            elif kind == 4:
                conjuncts.append(
                    f"value >= {self.rng.uniform(0, 900):.1f}")
            else:
                prefix = self.rng.choice(CATEGORIES)[:3 + self.rng
                                                     .randrange(3)]
                conjuncts.append(
                    f"STARTSWITH(category, '{prefix}')")
        where = f" WHERE {' AND '.join(conjuncts)}" if conjuncts else ""
        sql = (f"SELECT * FROM {spec.name}{where} "
               f"ORDER BY {order_column} {direction} LIMIT {k}")
        return GeneratedQuery(sql, "topk_plain", [spec.name])


def run_workload(platform: Platform,
                 queries: Iterable[GeneratedQuery],
                 options=None) -> list:
    """Execute queries and return their :class:`QueryResult` objects."""
    return [platform.catalog.sql(q.sql, options) for q in queries]
