"""SQL-text classification of LIMIT/top-k query types (Table 1).

The paper derives Table 1 "based on pattern-matching on SQL texts";
this module implements that pattern matching over our generated SQL.
"""

from __future__ import annotations

import enum
import re


class QueryClass(enum.Enum):
    """Table 1 categories (plus the non-LIMIT remainder)."""

    PLAIN = "plain select"
    LIMIT_NO_PREDICATE = "LIMIT without predicate"
    LIMIT_WITH_PREDICATE = "LIMIT with predicate"
    TOPK_ORDER_LIMIT = "ORDER BY x LIMIT k"
    TOPK_GROUP_ORDER_KEY = "GROUP BY x ORDER BY x LIMIT k"
    TOPK_GROUP_ORDER_AGG = "GROUP BY y ORDER BY agg(x) LIMIT k"

    @property
    def is_limit(self) -> bool:
        return self in (QueryClass.LIMIT_NO_PREDICATE,
                        QueryClass.LIMIT_WITH_PREDICATE)

    @property
    def is_topk(self) -> bool:
        return self in (QueryClass.TOPK_ORDER_LIMIT,
                        QueryClass.TOPK_GROUP_ORDER_KEY,
                        QueryClass.TOPK_GROUP_ORDER_AGG)


_LIMIT_RE = re.compile(r"\bLIMIT\s+\d+", re.IGNORECASE)
_WHERE_RE = re.compile(r"\bWHERE\b", re.IGNORECASE)
_ORDER_RE = re.compile(r"\bORDER\s+BY\s+(.+?)(?:\bLIMIT\b|$)",
                       re.IGNORECASE | re.DOTALL)
_GROUP_RE = re.compile(r"\bGROUP\s+BY\s+(.+?)(?:\bORDER\b|\bLIMIT\b|$)",
                       re.IGNORECASE | re.DOTALL)
_AGG_RE = re.compile(r"\b(count|sum|min|max|avg)\s*\(", re.IGNORECASE)


def classify_sql(sql: str) -> QueryClass:
    """Classify one SELECT statement by its SQL text."""
    has_limit = _LIMIT_RE.search(sql) is not None
    if not has_limit:
        return QueryClass.PLAIN
    order_match = _ORDER_RE.search(sql)
    if order_match is None:
        if _WHERE_RE.search(sql):
            return QueryClass.LIMIT_WITH_PREDICATE
        return QueryClass.LIMIT_NO_PREDICATE
    group_match = _GROUP_RE.search(sql)
    if group_match is None:
        return QueryClass.TOPK_ORDER_LIMIT
    order_text = order_match.group(1)
    if _AGG_RE.search(order_text):
        return QueryClass.TOPK_GROUP_ORDER_AGG
    order_columns = {_strip_direction(part)
                     for part in order_text.split(",")}
    group_columns = {part.strip().lower()
                     for part in group_match.group(1).split(",")}
    if order_columns <= group_columns:
        return QueryClass.TOPK_GROUP_ORDER_KEY
    # ORDER BY an alias of an aggregate: treat as agg ordering.
    return QueryClass.TOPK_GROUP_ORDER_AGG


def _strip_direction(text: str) -> str:
    text = text.strip().lower()
    for suffix in (" desc", " asc"):
        if text.endswith(suffix):
            text = text[: -len(suffix)].strip()
    return text
