"""Mini TPC-H: deterministic dbgen plus the 22 queries' pruning shapes.

§8.3 measures pruning on TPC-H SF100 clustered by ``l_shipdate`` and
``o_orderdate``, finding far lower pruning ratios than production
workloads (average 28.7%, median 8.3% per query). This module builds a
laptop-scale TPC-H with the spec's schemas and value distributions
(simplified but faithful where pruning is concerned: date ranges,
categorical domains, comment strings), and encodes each query's table
accesses and pruning-relevant predicates so the per-query pruning ratio
can be measured exactly as the paper does — partitions pruned over all
partitions addressed, including scans without filters.
"""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass, field

from ..catalog import Catalog
from ..expr import ast
from ..expr.ast import And, Compare, InList, Like, Not, Or, col, lit
from ..storage.clustering import Layout
from ..types import DataType, Schema

DATE_LO = datetime.date(1992, 1, 1)
DATE_HI = datetime.date(1998, 12, 31)

REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")
NATIONS = (
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
)
SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
            "HOUSEHOLD")
PART_TYPES = tuple(
    f"{p1} {p2} {p3}"
    for p1 in ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY",
               "PROMO")
    for p2 in ("ANODIZED", "BURNISHED", "PLATED", "POLISHED",
               "BRUSHED")
    for p3 in ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER"))
PART_COLORS = ("almond", "antique", "aquamarine", "azure", "beige",
               "bisque", "black", "blanched", "blue", "blush", "brown",
               "burlywood", "burnished", "chartreuse", "chiffon",
               "chocolate", "coral", "cornflower", "cream", "cyan",
               "dark", "deep", "dim", "dodger", "drab", "firebrick",
               "floral", "forest", "frosted", "gainsboro", "ghost",
               "goldenrod", "green", "grey", "honeydew", "hot",
               "indian", "ivory", "khaki", "lace", "lavender", "lawn",
               "lemon", "light", "lime", "linen", "magenta", "maroon",
               "medium")
CONTAINERS = tuple(
    f"{c1} {c2}" for c1 in ("SM", "LG", "MED", "JUMBO", "WRAP")
    for c2 in ("CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN",
               "DRUM"))
SHIP_MODES = ("REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB")
ORDER_STATUS = ("F", "O", "P")
RETURN_FLAGS = ("R", "A", "N")

LINEITEM = Schema.of(
    l_orderkey=DataType.INTEGER,
    l_partkey=DataType.INTEGER,
    l_suppkey=DataType.INTEGER,
    l_quantity=DataType.INTEGER,
    l_extendedprice=DataType.DOUBLE,
    l_discount=DataType.DOUBLE,
    l_tax=DataType.DOUBLE,
    l_returnflag=DataType.VARCHAR,
    l_linestatus=DataType.VARCHAR,
    l_shipdate=DataType.DATE,
    l_commitdate=DataType.DATE,
    l_receiptdate=DataType.DATE,
    l_shipmode=DataType.VARCHAR,
)
ORDERS = Schema.of(
    o_orderkey=DataType.INTEGER,
    o_custkey=DataType.INTEGER,
    o_orderstatus=DataType.VARCHAR,
    o_totalprice=DataType.DOUBLE,
    o_orderdate=DataType.DATE,
    o_orderpriority=DataType.VARCHAR,
    o_comment=DataType.VARCHAR,
)
CUSTOMER = Schema.of(
    c_custkey=DataType.INTEGER,
    c_nationkey=DataType.INTEGER,
    c_acctbal=DataType.DOUBLE,
    c_mktsegment=DataType.VARCHAR,
    c_phone=DataType.VARCHAR,
)
PART = Schema.of(
    p_partkey=DataType.INTEGER,
    p_name=DataType.VARCHAR,
    p_brand=DataType.VARCHAR,
    p_type=DataType.VARCHAR,
    p_size=DataType.INTEGER,
    p_container=DataType.VARCHAR,
    p_retailprice=DataType.DOUBLE,
)
SUPPLIER = Schema.of(
    s_suppkey=DataType.INTEGER,
    s_nationkey=DataType.INTEGER,
    s_acctbal=DataType.DOUBLE,
    s_comment=DataType.VARCHAR,
)
PARTSUPP = Schema.of(
    ps_partkey=DataType.INTEGER,
    ps_suppkey=DataType.INTEGER,
    ps_availqty=DataType.INTEGER,
    ps_supplycost=DataType.DOUBLE,
)
NATION = Schema.of(
    n_nationkey=DataType.INTEGER,
    n_name=DataType.VARCHAR,
    n_regionkey=DataType.INTEGER,
)
REGION = Schema.of(
    r_regionkey=DataType.INTEGER,
    r_name=DataType.VARCHAR,
)


@dataclass
class TpchConfig:
    """Scale knobs: ``orders_count`` drives everything else.

    The TPC-H row-count ratios are preserved: lineitem ~= 4x orders,
    customer = orders / 10, part = orders / 7.5, supplier = part / 20.
    """

    seed: int = 0
    orders_count: int = 12_000
    rows_per_partition: int = 500
    cluster: bool = True   #: cluster lineitem/orders by ship/order date


def _rand_date(rng: random.Random, lo: datetime.date = DATE_LO,
               hi: datetime.date = DATE_HI) -> datetime.date:
    span = (hi - lo).days
    return lo + datetime.timedelta(days=rng.randrange(span + 1))


def _comment(rng: random.Random) -> str:
    words = ("carefully", "quickly", "special", "requests", "deposits",
             "packages", "ironic", "express", "regular", "final",
             "pending", "bold", "furious")
    return " ".join(rng.choice(words) for _ in range(rng.randint(3, 8)))


def build_tpch(config: TpchConfig | None = None) -> Catalog:
    """Generate and register all eight TPC-H tables."""
    config = config or TpchConfig()
    rng = random.Random(config.seed)
    catalog = Catalog(rows_per_partition=config.rows_per_partition)

    n_orders = config.orders_count
    n_customers = max(10, n_orders // 10)
    n_parts = max(10, int(n_orders / 7.5))
    n_suppliers = max(5, n_parts // 20)

    catalog.create_table_from_rows(
        "region", REGION,
        [(i, name) for i, name in enumerate(REGIONS)])
    catalog.create_table_from_rows(
        "nation", NATION,
        [(i, name, region) for i, (name, region)
         in enumerate(NATIONS)])
    catalog.create_table_from_rows(
        "supplier", SUPPLIER,
        [(i, rng.randrange(len(NATIONS)),
          round(rng.uniform(-999, 9999), 2), _comment(rng))
         for i in range(n_suppliers)])
    catalog.create_table_from_rows(
        "customer", CUSTOMER,
        [(i, rng.randrange(len(NATIONS)),
          round(rng.uniform(-999, 9999), 2), rng.choice(SEGMENTS),
          f"{rng.randint(10, 34)}-{rng.randint(100, 999)}-"
          f"{rng.randint(100, 999)}-{rng.randint(1000, 9999)}")
         for i in range(n_customers)])
    catalog.create_table_from_rows(
        "part", PART,
        [(i,
          " ".join(rng.sample(PART_COLORS, 5)),
          f"Brand#{rng.randint(1, 5)}{rng.randint(1, 5)}",
          rng.choice(PART_TYPES),
          rng.randint(1, 50),
          rng.choice(CONTAINERS),
          round(900 + (i % 1000) + rng.uniform(0, 100), 2))
         for i in range(n_parts)])
    catalog.create_table_from_rows(
        "partsupp", PARTSUPP,
        [(i, rng.randrange(n_suppliers), rng.randint(1, 9999),
          round(rng.uniform(1, 1000), 2))
         for i in range(n_parts * 2)])

    order_rows = []
    lineitem_rows = []
    for okey in range(n_orders):
        orderdate = _rand_date(
            rng, DATE_LO, DATE_HI - datetime.timedelta(days=151))
        order_rows.append((
            okey, rng.randrange(n_customers), rng.choice(ORDER_STATUS),
            round(rng.uniform(1000, 450000), 2), orderdate,
            f"{rng.randint(1, 5)}-PRIORITY", _comment(rng)))
        for _ in range(rng.randint(1, 7)):
            shipdate = orderdate + datetime.timedelta(
                days=rng.randint(1, 121))
            commitdate = orderdate + datetime.timedelta(
                days=rng.randint(30, 90))
            receiptdate = shipdate + datetime.timedelta(
                days=rng.randint(1, 30))
            lineitem_rows.append((
                okey, rng.randrange(n_parts), rng.randrange(n_suppliers),
                rng.randint(1, 50),
                round(rng.uniform(900, 105000), 2),
                round(rng.choice((0.0, 0.01, 0.02, 0.03, 0.04, 0.05,
                                  0.06, 0.07, 0.08, 0.09, 0.10)), 2),
                round(rng.choice((0.0, 0.02, 0.04, 0.06, 0.08)), 2),
                rng.choice(RETURN_FLAGS), rng.choice(("O", "F")),
                shipdate, commitdate, receiptdate,
                rng.choice(SHIP_MODES)))

    orders_layout = Layout.sorted_by("o_orderdate") if config.cluster \
        else Layout.random(seed=config.seed)
    lineitem_layout = Layout.sorted_by("l_shipdate") if config.cluster \
        else Layout.random(seed=config.seed)
    catalog.create_table_from_rows("orders", ORDERS, order_rows,
                                   layout=orders_layout)
    catalog.create_table_from_rows("lineitem", LINEITEM, lineitem_rows,
                                   layout=lineitem_layout)
    return catalog


# ----------------------------------------------------------------------
# The 22 queries' table accesses and pruning-relevant predicates
# ----------------------------------------------------------------------
@dataclass
class TpchQuery:
    """One query's scans: (table, predicate or None) pairs."""

    number: int
    scans: list[tuple[str, ast.Expr | None]] = field(
        default_factory=list)


def _date(year: int, month: int, day: int) -> ast.Literal:
    return lit(datetime.date(year, month, day))


def _between_dates(column: str, lo: datetime.date,
                   hi_exclusive: datetime.date) -> ast.Expr:
    return And(Compare(">=", col(column), lit(lo)),
               Compare("<", col(column), lit(hi_exclusive)))


def tpch_queries() -> list[TpchQuery]:
    """Pruning shapes of Q1-Q22 with the spec's default substitutions."""
    d = datetime.date
    q = [
        TpchQuery(1, [("lineitem",
                       Compare("<=", col("l_shipdate"),
                               _date(1998, 9, 2)))]),
        TpchQuery(2, [
            ("part", And(Compare("=", col("p_size"), lit(15)),
                         Like(col("p_type"), "%BRASS"))),
            ("supplier", None), ("partsupp", None), ("nation", None),
            ("region", Compare("=", col("r_name"), lit("EUROPE"))),
        ]),
        TpchQuery(3, [
            ("customer", Compare("=", col("c_mktsegment"),
                                 lit("BUILDING"))),
            ("orders", Compare("<", col("o_orderdate"),
                               _date(1995, 3, 15))),
            ("lineitem", Compare(">", col("l_shipdate"),
                                 _date(1995, 3, 15))),
        ]),
        TpchQuery(4, [
            ("orders", _between_dates("o_orderdate", d(1993, 7, 1),
                                      d(1993, 10, 1))),
            ("lineitem", Compare("<", col("l_commitdate"),
                                 col("l_receiptdate"))),
        ]),
        TpchQuery(5, [
            ("customer", None), ("orders",
                                 _between_dates("o_orderdate",
                                                d(1994, 1, 1),
                                                d(1995, 1, 1))),
            ("lineitem", None), ("supplier", None), ("nation", None),
            ("region", Compare("=", col("r_name"), lit("ASIA"))),
        ]),
        TpchQuery(6, [("lineitem", And(
            _between_dates("l_shipdate", d(1994, 1, 1), d(1995, 1, 1)),
            Compare(">=", col("l_discount"), lit(0.05)),
            Compare("<=", col("l_discount"), lit(0.07)),
            Compare("<", col("l_quantity"), lit(24))))]),
        TpchQuery(7, [
            ("supplier", None), ("lineitem", And(
                Compare(">=", col("l_shipdate"), _date(1995, 1, 1)),
                Compare("<=", col("l_shipdate"), _date(1996, 12, 31)))),
            ("orders", None), ("customer", None),
            ("nation", InList(col("n_name"), ["FRANCE", "GERMANY"])),
        ]),
        TpchQuery(8, [
            ("part", Compare("=", col("p_type"),
                             lit("ECONOMY ANODIZED STEEL"))),
            ("supplier", None), ("lineitem", None),
            ("orders", And(
                Compare(">=", col("o_orderdate"), _date(1995, 1, 1)),
                Compare("<=", col("o_orderdate"), _date(1996, 12, 31)))),
            ("customer", None), ("nation", None),
            ("region", Compare("=", col("r_name"), lit("AMERICA"))),
        ]),
        TpchQuery(9, [
            ("part", Like(col("p_name"), "%green%")),
            ("supplier", None), ("lineitem", None),
            ("partsupp", None), ("orders", None), ("nation", None),
        ]),
        TpchQuery(10, [
            ("customer", None),
            ("orders", _between_dates("o_orderdate", d(1993, 10, 1),
                                      d(1994, 1, 1))),
            ("lineitem", Compare("=", col("l_returnflag"), lit("R"))),
            ("nation", None),
        ]),
        TpchQuery(11, [
            ("partsupp", None), ("supplier", None),
            ("nation", Compare("=", col("n_name"), lit("GERMANY"))),
        ]),
        TpchQuery(12, [
            ("orders", None),
            ("lineitem", And(
                InList(col("l_shipmode"), ["MAIL", "SHIP"]),
                Compare("<", col("l_commitdate"),
                        col("l_receiptdate")),
                Compare("<", col("l_shipdate"), col("l_commitdate")),
                _between_dates("l_receiptdate", d(1994, 1, 1),
                               d(1995, 1, 1)))),
        ]),
        TpchQuery(13, [
            ("customer", None),
            ("orders", Not(Like(col("o_comment"),
                                "%special%requests%"))),
        ]),
        TpchQuery(14, [
            ("lineitem", _between_dates("l_shipdate", d(1995, 9, 1),
                                        d(1995, 10, 1))),
            ("part", None),
        ]),
        TpchQuery(15, [
            ("lineitem", _between_dates("l_shipdate", d(1996, 1, 1),
                                        d(1996, 4, 1))),
            ("supplier", None),
        ]),
        TpchQuery(16, [
            ("partsupp", None),
            ("part", And(
                Compare("<>", col("p_brand"), lit("Brand#45")),
                Not(Like(col("p_type"), "MEDIUM POLISHED%")),
                InList(col("p_size"), [49, 14, 23, 45, 19, 3, 36, 9]))),
            ("supplier", Not(Like(col("s_comment"),
                                  "%Customer%Complaints%"))),
        ]),
        TpchQuery(17, [
            ("lineitem", None),
            ("part", And(
                Compare("=", col("p_brand"), lit("Brand#23")),
                Compare("=", col("p_container"), lit("MED BOX")))),
        ]),
        TpchQuery(18, [
            ("customer", None), ("orders", None), ("lineitem", None),
        ]),
        TpchQuery(19, [
            ("lineitem", And(
                InList(col("l_shipmode"), ["AIR", "REG AIR"]),
                Compare(">=", col("l_quantity"), lit(1)),
                Compare("<=", col("l_quantity"), lit(30)))),
            ("part", And(
                InList(col("p_brand"),
                       ["Brand#12", "Brand#23", "Brand#34"]),
                Compare(">=", col("p_size"), lit(1)),
                Compare("<=", col("p_size"), lit(15)))),
        ]),
        TpchQuery(20, [
            ("supplier", None),
            ("nation", Compare("=", col("n_name"), lit("CANADA"))),
            ("part", Like(col("p_name"), "forest%")),
            ("partsupp", None),
            ("lineitem", _between_dates("l_shipdate", d(1994, 1, 1),
                                        d(1995, 1, 1))),
        ]),
        TpchQuery(21, [
            ("supplier", None),
            ("lineitem", Compare(">", col("l_receiptdate"),
                                 col("l_commitdate"))),
            ("orders", Compare("=", col("o_orderstatus"), lit("F"))),
            ("nation", Compare("=", col("n_name"),
                               lit("SAUDI ARABIA"))),
        ]),
        TpchQuery(22, [
            ("customer", Or(*[
                Like(col("c_phone"), f"{code}-%")
                for code in ("13", "31", "23", "29", "30", "18", "17")
            ])),
            ("orders", None),
        ]),
    ]
    return q


def measure_query_pruning(catalog: Catalog,
                          query: TpchQuery) -> tuple[int, int]:
    """(total partitions, pruned partitions) for one query's scans.

    Matches the paper's convention: the denominator includes scans
    without predicates.
    """
    from ..pruning.filter_pruning import FilterPruner

    total = 0
    pruned = 0
    for table, predicate in query.scans:
        scan_set = catalog.scan_set(table)
        total += len(scan_set)
        if predicate is None:
            continue
        pruner = FilterPruner(predicate, catalog.schema_of(table),
                              detect_fully_matching=False)
        result = pruner.prune(scan_set)
        pruned += result.pruned
    return total, pruned
