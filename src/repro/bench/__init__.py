"""Experiment harness: distribution statistics and report rendering."""

from .stats import BoxStats, cdf_points, describe, percentile
from .reporting import Report, format_table, render_cdf

__all__ = ["BoxStats", "cdf_points", "describe", "percentile",
           "Report", "format_table", "render_cdf"]
