"""Distribution statistics for experiment outputs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    position = (len(ordered) - 1) * q / 100.0
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    weight = position - lower
    return float(ordered[lower] * (1 - weight) + ordered[upper] * weight)


@dataclass(frozen=True)
class BoxStats:
    """Box-plot statistics, as drawn in Figures 1/4/8/10."""

    count: int
    mean: float
    minimum: float
    p25: float
    median: float
    p75: float
    p90: float
    maximum: float

    def row(self) -> dict[str, float]:
        """The stats as a flat dict (for table rendering)."""
        return {
            "count": self.count, "mean": self.mean, "min": self.minimum,
            "p25": self.p25, "median": self.median, "p75": self.p75,
            "p90": self.p90, "max": self.maximum,
        }


def describe(values: Sequence[float]) -> BoxStats:
    """Box-plot statistics of a non-empty sequence."""
    if not values:
        raise ValueError("describe of empty sequence")
    return BoxStats(
        count=len(values),
        mean=sum(values) / len(values),
        minimum=float(min(values)),
        p25=percentile(values, 25),
        median=percentile(values, 50),
        p75=percentile(values, 75),
        p90=percentile(values, 90),
        maximum=float(max(values)),
    )


def cdf_points(values: Sequence[float],
               points: Sequence[float]) -> list[tuple[float, float]]:
    """(threshold, fraction of values <= threshold) pairs."""
    if not values:
        return [(p, 0.0) for p in points]
    ordered = sorted(values)
    n = len(ordered)
    result = []
    for point in points:
        count = _count_le(ordered, point)
        result.append((point, count / n))
    return result


def _count_le(ordered: Sequence[float], threshold: float) -> int:
    lo, hi = 0, len(ordered)
    while lo < hi:
        mid = (lo + hi) // 2
        if ordered[mid] <= threshold:
            lo = mid + 1
        else:
            hi = mid
    return lo


def fraction_at_least(values: Sequence[float],
                      threshold: float) -> float:
    """Fraction of values >= threshold."""
    if not values:
        return 0.0
    return sum(1 for v in values if v >= threshold) / len(values)


def fraction_at_most(values: Sequence[float], threshold: float) -> float:
    """Fraction of values <= threshold."""
    if not values:
        return 0.0
    return sum(1 for v in values if v <= threshold) / len(values)
