"""Rendering experiment results as text reports.

Every benchmark prints a :class:`Report`: a title, optional
paper-vs-measured rows, and free-form tables — so ``pytest benchmarks/
-s`` regenerates the paper's numbers in readable form and
EXPERIMENTS.md can quote them directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[Any]]) -> str:
    """Fixed-width text table.

    Every row must have exactly ``len(headers)`` cells; a ragged row
    raises :class:`ValueError` instead of being silently truncated by
    the column-wise ``zip``.
    """
    for i, row in enumerate(rows):
        if len(row) != len(headers):
            raise ValueError(
                f"format_table: row {i} has {len(row)} cells, "
                f"expected {len(headers)} (headers: {list(headers)})")
    columns = [list(map(_fmt, column))
               for column in zip(headers, *rows)] if rows else \
        [[_fmt(h)] for h in headers]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    header_line = "  ".join(
        _fmt(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append("  ".join(
            _fmt(cell).ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_cdf(points: Sequence[tuple[float, float]],
               label: str = "", width: int = 40) -> str:
    """ASCII sketch of a CDF: one bar per (threshold, fraction)."""
    lines = [f"CDF {label}".rstrip()]
    for threshold, fraction in points:
        bar = "#" * int(round(fraction * width))
        lines.append(f"{_fmt(threshold):>12} | {bar:<{width}} "
                     f"{fraction:6.1%}")
    return "\n".join(lines)


@dataclass
class Report:
    """A named experiment report with paper-vs-measured comparisons."""

    title: str
    lines: list[str] = field(default_factory=list)

    def add(self, text: str = "") -> None:
        """Append a free-form line to the report body."""
        self.lines.append(text)

    def compare(self, metric: str, paper: Any, measured: Any,
                note: str = "") -> None:
        """Record one paper-vs-measured comparison line."""
        suffix = f"  ({note})" if note else ""
        self.lines.append(
            f"  {metric}: paper={_fmt(paper)}  "
            f"measured={_fmt(measured)}{suffix}")

    def table(self, headers: Sequence[str],
              rows: Sequence[Sequence[Any]]) -> None:
        """Append a fixed-width table to the report body."""
        self.lines.append(format_table(headers, rows))

    def render(self) -> str:
        """The full report as a string."""
        bar = "=" * max(20, len(self.title))
        return "\n".join([bar, self.title, bar, *self.lines, ""])

    def print(self) -> None:
        """Print the rendered report (visible under pytest -s)."""
        print("\n" + self.render())
