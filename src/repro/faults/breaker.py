"""A count-based circuit breaker for the metadata service.

When the metadata KV service fails repeatedly, retrying every lookup
multiplies the outage's cost: every scan of every query burns its full
retry budget before degrading. The breaker fails fast instead: after
``failure_threshold`` consecutive failures it *opens* and rejects
calls immediately with :class:`~repro.errors.CircuitOpenError`; every
``probe_interval``-th rejected call is let through as a probe, and one
probe success closes the circuit again.

The breaker is deliberately count-based (not wall-clock-based) so
fault-injection tests are deterministic.
"""

from __future__ import annotations

import threading

from ..errors import CircuitOpenError

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Thread-safe consecutive-failure circuit breaker.

    Protocol: call :meth:`check` before the protected operation
    (raises :class:`CircuitOpenError` when open and not probing),
    then :meth:`record_success` or :meth:`record_failure` after.
    """

    CLOSED = "closed"
    OPEN = "open"

    def __init__(self, failure_threshold: int = 5,
                 probe_interval: int = 10, name: str = "metadata"):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if probe_interval < 1:
            raise ValueError("probe_interval must be >= 1")
        self.failure_threshold = failure_threshold
        self.probe_interval = probe_interval
        self.name = name
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._rejections_since_open = 0
        self.opens = 0
        self.fast_failures = 0

    @property
    def state(self) -> str:
        return self._state

    def check(self) -> None:
        """Gate one call. While open, rejects all but every
        ``probe_interval``-th call (the probe)."""
        with self._lock:
            if self._state == self.CLOSED:
                return
            self._rejections_since_open += 1
            if self._rejections_since_open % self.probe_interval == 0:
                return  # let a probe through
            self.fast_failures += 1
        raise CircuitOpenError(
            f"{self.name} circuit breaker is open "
            f"({self._consecutive_failures} consecutive failures)")

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._rejections_since_open = 0
            self._state = self.CLOSED

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            if self._state == self.OPEN:
                # A probe failed. Restart the rejection cycle so the
                # next probe is admitted only after a *full*
                # ``probe_interval`` rejections — otherwise the counter
                # keeps its mid-cycle remainder and the breaker probes
                # a still-broken dependency almost immediately.
                self._rejections_since_open = 0
                return
            if self._consecutive_failures >= self.failure_threshold:
                self._state = self.OPEN
                self._rejections_since_open = 0
                self.opens += 1

    def reset(self) -> None:
        """Force-close (administrative)."""
        self.record_success()

    def snapshot(self) -> dict[str, float]:
        with self._lock:
            return {
                "state": 1.0 if self._state == self.OPEN else 0.0,
                "opens": float(self.opens),
                "fast_failures": float(self.fast_failures),
                "consecutive_failures":
                    float(self._consecutive_failures),
            }

    def __repr__(self) -> str:
        return (f"CircuitBreaker({self.name}, state={self._state}, "
                f"opens={self.opens})")
