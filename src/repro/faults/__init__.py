"""Fault injection, retries, and graceful degradation (robustness).

The paper's architecture reads micro-partitions from cloud object
storage and zone maps from a metadata KV service (§2) — two networks
that throttle, time out, and corrupt bytes in production. Pruning is
an *optimization* layered on those networks: it must never change
results, and when its metadata inputs fail it must fail open to a
full scan, never fail the query.

This package supplies the resilience building blocks the rest of the
stack plumbs through:

- :mod:`.injector` — :class:`FaultInjector`, a deterministic seedable
  source of transient faults (timeouts, throttling), latency spikes,
  wire corruption, and permanent unavailability;
- :mod:`.retry` — :class:`RetryPolicy` (capped exponential backoff,
  deterministic jitter, retry budgets, per-class retryability) and
  :class:`RetryStats` accounting;
- :mod:`.breaker` — :class:`CircuitBreaker`, fail-fast protection
  around the metadata store during outages;
- :mod:`.crash` — :class:`CrashInjector`, deterministic process-death
  simulation at named commit-path points (``pre-append``,
  ``mid-append`` torn writes, ...) for the durability subsystem's
  crash-recovery sweep (see :mod:`repro.durability`).

Quickstart::

    from repro import Catalog
    from repro.faults import FaultInjector, FaultSpec, RetryPolicy

    catalog = Catalog()
    ...
    catalog.enable_fault_injection(
        FaultInjector(seed=7,
                      storage=FaultSpec(timeout_rate=0.05,
                                        corruption_rate=0.02),
                      metadata=FaultSpec(timeout_rate=0.05)),
        retry_policy=RetryPolicy(max_attempts=6))
    result = catalog.sql("SELECT ...")   # identical rows, plus
    result.profile.resilience_summary()  # retries/degradation report
"""

from .breaker import CircuitBreaker
from .crash import CRASH_POINTS, CrashInjector, SimulatedCrash
from .injector import (
    METADATA,
    STORAGE,
    FaultDecision,
    FaultInjector,
    FaultSpec,
)
from .retry import DEFAULT_RETRYABLE, RetryPolicy, RetryStats

__all__ = [
    "CRASH_POINTS",
    "CircuitBreaker",
    "CrashInjector",
    "FaultDecision",
    "FaultInjector",
    "FaultSpec",
    "RetryPolicy",
    "RetryStats",
    "SimulatedCrash",
    "DEFAULT_RETRYABLE",
    "STORAGE",
    "METADATA",
]
