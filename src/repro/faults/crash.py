"""Deterministic crash injection for the durability subsystem.

Where :class:`~repro.faults.injector.FaultInjector` models *transient*
network faults (timeouts, throttling, corruption-on-the-wire), this
module models the one fault retries cannot absorb: the process dying
mid-operation. A :class:`CrashInjector` is armed at one of the
enumerated :data:`CRASH_POINTS` on the commit path and raises
:class:`SimulatedCrash` the moment execution reaches it, leaving
whatever bytes were already written exactly as a real crash would.

Tests then "reboot" by recovering a fresh catalog from the durability
directory and compare it against the pre-/post-commit oracles — the
crash-at-every-point sweep in ``tests/test_durability.py``.

:class:`SimulatedCrash` deliberately derives from ``BaseException``,
not ``Exception``: the engine has several fail-closed ``except
Exception`` fallbacks (plan cache, degradation paths) and none of them
may swallow a crash — a real ``SIGKILL`` cannot be caught either.
"""

from __future__ import annotations

import threading
from typing import Callable

__all__ = ["CRASH_POINTS", "CrashInjector", "SimulatedCrash"]

#: the enumerated crash points on the durability commit path, in
#: commit order. ``pre-append`` and ``mid-append`` fire inside
#: :meth:`~repro.durability.wal.WriteAheadLog.append` (nothing /
#: a torn frame on disk); ``post-append-pre-apply`` fires after the
#: record is durable but before the catalog applies it;
#: ``mid-checkpoint`` fires after the snapshot's temp directory is
#: written but before the atomic rename; ``post-rename`` fires after
#: the checkpoint is published but before the WAL is truncated.
CRASH_POINTS: tuple[str, ...] = (
    "pre-append",
    "mid-append",
    "post-append-pre-apply",
    "mid-checkpoint",
    "post-rename",
)


class SimulatedCrash(BaseException):
    """The simulated process death raised at an armed crash point."""

    def __init__(self, point: str):
        super().__init__(f"simulated crash at {point!r}")
        self.point = point


class CrashInjector:
    """Arms crash points and fires :class:`SimulatedCrash` on arrival.

    Deterministic by construction: :meth:`arm` selects the ``at``-th
    *occurrence* of a named point, so "crash on the 3rd WAL append" is
    reproducible without randomness. Armed points are one-shot — a
    fired point disarms itself, mirroring a process that died once.
    """

    def __init__(self):
        self._lock = threading.Lock()
        #: point -> occurrence number (1-based) that should crash
        self._armed: dict[str, int] = {}
        #: point -> occurrences observed so far
        self._counts: dict[str, int] = {}
        #: points that actually fired, in order
        self.fired: list[str] = []

    def arm(self, point: str, at: int = 1) -> "CrashInjector":
        """Crash the ``at``-th time ``point`` is reached *from now*
        (1-based) — occurrences before arming don't count, so a test
        can run a clean prefix of the workload and then arm."""
        if point not in CRASH_POINTS:
            raise ValueError(
                f"unknown crash point {point!r}; expected one of "
                f"{CRASH_POINTS}")
        if at < 1:
            raise ValueError("at must be >= 1")
        with self._lock:
            self._armed[point] = self._counts.get(point, 0) + at
        return self

    def disarm(self, point: str | None = None) -> None:
        """Disarm one point, or every point when ``point`` is None."""
        with self._lock:
            if point is None:
                self._armed.clear()
            else:
                self._armed.pop(point, None)

    def count(self, point: str) -> int:
        """Occurrences of ``point`` observed so far."""
        with self._lock:
            return self._counts.get(point, 0)

    def crashpoint(self, point: str,
                   on_fire: Callable[[], None] | None = None) -> None:
        """Record one occurrence of ``point``; crash if armed for it.

        ``on_fire`` runs just before the crash is raised — the WAL uses
        it to emit the torn half-frame a mid-append crash leaves behind.
        """
        with self._lock:
            count = self._counts.get(point, 0) + 1
            self._counts[point] = count
            fire = self._armed.get(point) == count
            if fire:
                del self._armed[point]
        if fire:
            if on_fire is not None:
                on_fire()
            self.fired.append(point)
            raise SimulatedCrash(point)

    def __repr__(self) -> str:
        with self._lock:
            armed = dict(self._armed)
        return f"CrashInjector(armed={armed}, fired={self.fired})"
