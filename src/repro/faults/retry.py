"""Retry policies with capped exponential backoff and deterministic jitter.

Storage and metadata reads are wrapped in a :class:`RetryPolicy`:
transient faults (timeouts, throttling, wire corruption) are retried
with exponentially growing, capped, jittered backoff; permanent faults
propagate immediately. Backoff time is *simulated* — recorded into
:class:`RetryStats` and charged to the query's simulated clock — so
fault-injection test suites stay fast and deterministic.

Determinism: the jitter for attempt ``n`` is a pure function of
``(seed, n)``, so a policy's backoff sequence is reproducible and two
policies with the same seed behave identically.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, TypeVar

from ..errors import CorruptionError, TransientError

__all__ = ["RetryPolicy", "RetryStats", "DEFAULT_RETRYABLE"]

T = TypeVar("T")

#: Error classes retried by default: transient network faults plus
#: wire-level corruption (a re-read may return clean bytes).
DEFAULT_RETRYABLE: tuple[type[BaseException], ...] = (
    TransientError, CorruptionError)

_MASK64 = 0xFFFFFFFFFFFFFFFF
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def stable_hash64(text: str) -> int:
    """FNV-1a over UTF-8 bytes, murmur-finalized.

    Python's builtin ``hash`` is salted per process for strings, which
    would make "deterministic" jitter and fault schedules differ run to
    run; this hash is stable everywhere.
    """
    h = _FNV_OFFSET
    for byte in text.encode("utf-8"):
        h ^= byte
        h = (h * _FNV_PRIME) & _MASK64
    h ^= h >> 33
    h = (h * 0xFF51AFD7ED558CCD) & _MASK64
    h ^= h >> 33
    return h


def stable_uniform(text: str) -> float:
    """A deterministic uniform draw in [0, 1) keyed by ``text``."""
    return stable_hash64(text) / 2.0**64


class RetryStats:
    """Thread-safe counters for retries absorbed below a query.

    One instance is attached to each :class:`~repro.engine.context.
    QueryProfile` (per-query attribution) and another lives on the
    storage/metadata layers (service-wide attribution).
    """

    __slots__ = ("_lock", "retries", "backoff_ms",
                 "injected_latency_ms", "by_class", "trace_hook")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.retries = 0
        self.backoff_ms = 0.0
        self.injected_latency_ms = 0.0
        self.by_class: dict[str, int] = {}
        #: optional ``hook(error_class_name, delay_ms)`` observing each
        #: absorbed retry (trace events). Set only on per-query stats
        #: used from the query's own thread — :meth:`absorb` never
        #: copies it, so morsel workers' private stats stay hook-free.
        self.trace_hook: Callable[[str, float], None] | None = None

    def record_retry(self, exc: BaseException, delay_ms: float) -> None:
        """Account one retried failure and its backoff delay."""
        name = type(exc).__name__
        with self._lock:
            self.retries += 1
            self.backoff_ms += delay_ms
            self.by_class[name] = self.by_class.get(name, 0) + 1
        hook = self.trace_hook
        if hook is not None:
            # Invoked outside the lock: the hook may allocate spans or
            # re-enter profile accounting.
            hook(name, delay_ms)

    def add_latency(self, ms: float) -> None:
        """Account an injected latency spike (no failure)."""
        with self._lock:
            self.injected_latency_ms += ms

    def penalty_ms(self) -> float:
        """Total simulated slowdown: backoff plus latency spikes."""
        with self._lock:
            return self.backoff_ms + self.injected_latency_ms

    def absorb(self, other: "RetryStats") -> None:
        """Fold another instance's counters into this one.

        Parallel scans give each worker a private ``RetryStats`` per
        partition load and merge it into the query's stats when the
        morsel is consumed, so per-query attribution stays exact
        without contending on one lock inside every load attempt.
        """
        with other._lock:
            retries = other.retries
            backoff_ms = other.backoff_ms
            injected_latency_ms = other.injected_latency_ms
            by_class = dict(other.by_class)
        with self._lock:
            self.retries += retries
            self.backoff_ms += backoff_ms
            self.injected_latency_ms += injected_latency_ms
            for name, count in by_class.items():
                self.by_class[name] = self.by_class.get(name, 0) + count

    def snapshot(self) -> dict[str, float]:
        with self._lock:
            out: dict[str, float] = {
                "retries": float(self.retries),
                "backoff_ms": self.backoff_ms,
                "injected_latency_ms": self.injected_latency_ms,
            }
            for name, count in self.by_class.items():
                out[f"retries.{name}"] = float(count)
            return out

    def __repr__(self) -> str:
        return (f"RetryStats(retries={self.retries}, "
                f"backoff_ms={self.backoff_ms:.2f})")


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    Attributes:
        max_attempts: total attempts including the first (>= 1).
        base_ms: backoff before the first retry.
        multiplier: exponential growth factor per retry.
        cap_ms: upper bound on a single backoff step.
        jitter: fraction of each step randomly *subtracted*
            (``0 <= jitter < 1``). Subtractive jitter keeps the
            nominal sequence an upper bound and — as long as
            ``multiplier * (1 - jitter) >= 1`` — the jittered
            sequence non-decreasing until the cap.
        budget_ms: total backoff budget per :meth:`run` call; once
            spent, the next failure propagates even if attempts
            remain (None = unlimited).
        seed: jitter seed; same seed, same backoff sequence.
        retryable: exception classes eligible for retry. Everything
            else propagates immediately.
    """

    max_attempts: int = 4
    base_ms: float = 5.0
    multiplier: float = 2.0
    cap_ms: float = 100.0
    jitter: float = 0.25
    budget_ms: float | None = None
    seed: int = 0
    retryable: tuple[type[BaseException], ...] = DEFAULT_RETRYABLE

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def nominal_ms(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (0-based), without jitter."""
        return min(self.base_ms * self.multiplier**attempt, self.cap_ms)

    def backoff_ms(self, attempt: int) -> float:
        """Jittered backoff before retry ``attempt`` (0-based)."""
        nominal = self.nominal_ms(attempt)
        u = stable_uniform(f"backoff|{self.seed}|{attempt}")
        return nominal * (1.0 - self.jitter * u)

    def backoff_sequence(self) -> list[float]:
        """Every backoff step this policy can take, in order."""
        return [self.backoff_ms(i)
                for i in range(self.max_attempts - 1)]

    def run(self, fn: Callable[[], T], *,
            stats: RetryStats | None = None,
            on_retry: Callable[[BaseException, float], None] | None = None,
            sleeper: Callable[[float], None] | None = None) -> T:
        """Call ``fn`` with retries; returns its result.

        Non-retryable errors, exhausted attempts, and exhausted backoff
        budgets all re-raise the *last* error unchanged, so callers
        always see a typed exception. ``stats``/``on_retry`` observe
        each absorbed failure; ``sleeper`` (if given) receives each
        backoff in milliseconds — by default no wall-clock sleeping
        happens, the delay is simulated.
        """
        attempt = 0
        spent = 0.0
        while True:
            try:
                return fn()
            except self.retryable as exc:
                if attempt >= self.max_attempts - 1:
                    raise
                delay = self.backoff_ms(attempt)
                if self.budget_ms is not None \
                        and spent + delay > self.budget_ms:
                    raise
                spent += delay
                attempt += 1
                if stats is not None:
                    stats.record_retry(exc, delay)
                if on_retry is not None:
                    on_retry(exc, delay)
                if sleeper is not None:
                    sleeper(delay)
