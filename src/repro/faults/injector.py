"""Deterministic, seedable fault injection for storage and metadata.

The :class:`FaultInjector` sits in front of the two simulated networks
— cloud object storage (:class:`~repro.storage.storage_layer.
StorageLayer`) and the metadata KV service (:class:`~repro.storage.
metadata_store.MetadataStore`) — and decides, per request, whether to
inject a transient failure (timeout, throttling), a latency spike, a
wire-corruption, or a permanent unavailability.

Decisions are a pure function of ``(seed, scope, key, n)`` where ``n``
counts accesses to that key, so a single-threaded run with a fixed
seed replays the exact same fault schedule. Under concurrency the
per-key sequence is still deterministic per key; only the interleaving
varies.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..errors import (
    MetadataThrottled,
    MetadataTimeout,
    MetadataUnavailableError,
    PartitionUnavailableError,
    StorageThrottled,
    StorageTimeout,
)
from .retry import stable_uniform

__all__ = ["FaultSpec", "FaultDecision", "FaultInjector",
           "STORAGE", "METADATA"]

#: Scope names used for per-scope fault specs and counters.
STORAGE = "storage"
METADATA = "metadata"


@dataclass(frozen=True)
class FaultSpec:
    """Per-scope fault probabilities (each in [0, 1]).

    Rates are evaluated against a single uniform draw, in the order
    timeout -> throttle -> corruption -> latency, so their sum must
    not exceed 1. ``corruption_rate`` only applies to storage reads.
    """

    timeout_rate: float = 0.0
    throttle_rate: float = 0.0
    corruption_rate: float = 0.0
    latency_rate: float = 0.0
    latency_ms: float = 50.0

    def __post_init__(self) -> None:
        rates = (self.timeout_rate, self.throttle_rate,
                 self.corruption_rate, self.latency_rate)
        if any(not 0.0 <= r <= 1.0 for r in rates):
            raise ValueError("fault rates must be in [0, 1]")
        if sum(rates) > 1.0:
            raise ValueError("fault rates must sum to <= 1")

    @property
    def total_rate(self) -> float:
        return (self.timeout_rate + self.throttle_rate
                + self.corruption_rate + self.latency_rate)


@dataclass(frozen=True)
class FaultDecision:
    """Outcome of one non-raising injector roll.

    ``corrupt`` asks the storage layer to simulate a wire-level bit
    flip (surfaced as a checksum mismatch); ``latency_ms`` adds a
    simulated latency spike. A clean roll is ``FaultDecision()``.
    """

    corrupt: bool = False
    latency_ms: float = 0.0


_CLEAN = FaultDecision()


@dataclass
class _ScopeState:
    spec: FaultSpec = field(default_factory=FaultSpec)
    outage: bool = False
    unavailable: set[Any] = field(default_factory=set)


class FaultInjector:
    """Seeded fault source consulted by storage and metadata reads.

    Usage::

        injector = FaultInjector(
            seed=7,
            storage=FaultSpec(timeout_rate=0.05, corruption_rate=0.02),
            metadata=FaultSpec(timeout_rate=0.05))
        catalog.enable_fault_injection(injector)

    Permanent faults are explicit: :meth:`mark_unavailable` makes one
    partition (or metadata key) permanently fail;
    :meth:`set_outage` downs a whole scope — the metadata outage is
    what the pruning pipeline must absorb by degrading to full scans.
    """

    def __init__(self, seed: int = 0,
                 storage: FaultSpec | None = None,
                 metadata: FaultSpec | None = None,
                 enabled: bool = True):
        self.seed = seed
        self.enabled = enabled
        self._scopes: dict[str, _ScopeState] = {
            STORAGE: _ScopeState(spec=storage or FaultSpec()),
            METADATA: _ScopeState(spec=metadata or FaultSpec()),
        }
        self._counts: dict[tuple[str, Any], int] = {}
        self._injected: dict[str, int] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def spec(self, scope: str) -> FaultSpec:
        return self._scope(scope).spec

    def set_spec(self, scope: str, spec: FaultSpec) -> None:
        self._scope(scope).spec = spec

    def mark_unavailable(self, scope: str, key: Any) -> None:
        """Permanently fail every access to ``key`` (lost blob)."""
        with self._lock:
            self._scope(scope).unavailable.add(key)

    def restore(self, scope: str, key: Any) -> None:
        with self._lock:
            self._scope(scope).unavailable.discard(key)

    def set_outage(self, scope: str, down: bool = True) -> None:
        """Down (or restore) an entire scope, e.g. a metadata outage."""
        self._scope(scope).outage = down

    @contextmanager
    def paused(self) -> Iterator[None]:
        """Temporarily disable injection (e.g. while computing an
        oracle answer on a shared catalog)."""
        previous = self.enabled
        self.enabled = False
        try:
            yield
        finally:
            self.enabled = previous

    def _scope(self, scope: str) -> _ScopeState:
        try:
            return self._scopes[scope]
        except KeyError:
            raise ValueError(f"unknown fault scope {scope!r}") from None

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def injected(self) -> dict[str, int]:
        """Counts of injected faults keyed by ``scope.kind``."""
        with self._lock:
            return dict(self._injected)

    def total_injected(self) -> int:
        with self._lock:
            return sum(self._injected.values())

    def _count(self, scope: str, kind: str) -> None:
        with self._lock:
            key = f"{scope}.{kind}"
            self._injected[key] = self._injected.get(key, 0) + 1

    # ------------------------------------------------------------------
    # Rolls
    # ------------------------------------------------------------------
    def _roll(self, scope: str, key: Any) -> float:
        """Deterministic uniform draw for access #n of (scope, key)."""
        with self._lock:
            count_key = (scope, key)
            n = self._counts.get(count_key, 0) + 1
            self._counts[count_key] = n
        return stable_uniform(f"{self.seed}|{scope}|{key!r}|{n}")

    def storage_check(self, partition_id: int) -> FaultDecision:
        """Consulted by :meth:`StorageLayer.load` before each attempt.

        Raises :class:`PartitionUnavailableError` (permanent),
        :class:`StorageTimeout` or :class:`StorageThrottled`
        (transient); returns a :class:`FaultDecision` otherwise.
        """
        state = self._scope(STORAGE)
        if not self.enabled:
            return _CLEAN
        if state.outage or partition_id in state.unavailable:
            self._count(STORAGE, "unavailable")
            raise PartitionUnavailableError(
                f"partition {partition_id} is permanently unavailable "
                f"(injected)", partition_id=partition_id)
        spec = state.spec
        if spec.total_rate == 0.0:
            return _CLEAN
        r = self._roll(STORAGE, partition_id)
        if r < spec.timeout_rate:
            self._count(STORAGE, "timeout")
            raise StorageTimeout(
                f"read of partition {partition_id} timed out (injected)")
        r -= spec.timeout_rate
        if r < spec.throttle_rate:
            self._count(STORAGE, "throttle")
            raise StorageThrottled(
                f"read of partition {partition_id} throttled (injected)")
        r -= spec.throttle_rate
        if r < spec.corruption_rate:
            self._count(STORAGE, "corruption")
            return FaultDecision(corrupt=True)
        r -= spec.corruption_rate
        if r < spec.latency_rate:
            self._count(STORAGE, "latency")
            return FaultDecision(latency_ms=spec.latency_ms)
        return _CLEAN

    def metadata_check(self, key: Any) -> FaultDecision:
        """Consulted by :meth:`MetadataStore` reads before each attempt.

        Raises :class:`MetadataUnavailableError` (outage),
        :class:`MetadataTimeout` or :class:`MetadataThrottled`
        (transient); returns a :class:`FaultDecision` otherwise.
        """
        state = self._scope(METADATA)
        if not self.enabled:
            return _CLEAN
        if state.outage or key in state.unavailable:
            self._count(METADATA, "unavailable")
            raise MetadataUnavailableError(
                f"metadata service unavailable for {key!r} (injected)")
        spec = state.spec
        if spec.total_rate == 0.0:
            return _CLEAN
        r = self._roll(METADATA, key)
        if r < spec.timeout_rate:
            self._count(METADATA, "timeout")
            raise MetadataTimeout(
                f"metadata lookup {key!r} timed out (injected)")
        r -= spec.timeout_rate
        if r < spec.throttle_rate:
            self._count(METADATA, "throttle")
            raise MetadataThrottled(
                f"metadata lookup {key!r} throttled (injected)")
        r -= spec.throttle_rate + spec.corruption_rate
        if r < spec.latency_rate:
            self._count(METADATA, "latency")
            return FaultDecision(latency_ms=spec.latency_ms)
        return _CLEAN
